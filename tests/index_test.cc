#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "index/dataguide.h"
#include "index/indexed_document.h"
#include "index/tag_streams.h"
#include "index/term_index.h"
#include "tests/test_util.h"

namespace lotusx::index {
namespace {

using lotusx::testing::MustIndex;
using lotusx::testing::MustParse;
using xml::Document;
using xml::NodeId;

constexpr std::string_view kSample = R"(<dblp>
  <article key="a1">
    <author>jiaheng lu</author>
    <author>chunbin lin</author>
    <title>position aware search</title>
    <year>2012</year>
  </article>
  <book key="b1">
    <author>tok wang ling</author>
    <title>xml twig search</title>
  </book>
</dblp>)";

// -------------------------------------------------------------- DataGuide

TEST(DataGuideTest, OnePathNodePerDistinctPath) {
  Document doc = MustParse(kSample);
  DataGuide guide = DataGuide::Build(doc);
  // Paths: /dblp, /dblp/article, /dblp/article/@key, /dblp/article/author,
  // /dblp/article/title, /dblp/article/year, /dblp/book, /dblp/book/@key,
  // /dblp/book/author, /dblp/book/title -> 10.
  EXPECT_EQ(guide.num_paths(), 10);
}

TEST(DataGuideTest, CountsOccurrences) {
  Document doc = MustParse(kSample);
  DataGuide guide = DataGuide::Build(doc);
  PathId article = guide.FindChild(guide.root(), doc.FindTag("article"));
  ASSERT_NE(article, kInvalidPathId);
  EXPECT_EQ(guide.node(article).count, 1u);
  PathId author = guide.FindChild(article, doc.FindTag("author"));
  ASSERT_NE(author, kInvalidPathId);
  EXPECT_EQ(guide.node(author).count, 2u);
  EXPECT_EQ(guide.node(author).text_count, 2u);
}

TEST(DataGuideTest, PathOfMapsNodesToPaths) {
  Document doc = MustParse(kSample);
  DataGuide guide = DataGuide::Build(doc);
  for (NodeId id = 0; id < doc.num_nodes(); ++id) {
    if (doc.node(id).kind == xml::NodeKind::kText) {
      EXPECT_EQ(guide.PathOf(id), kInvalidPathId);
      continue;
    }
    PathId path = guide.PathOf(id);
    ASSERT_NE(path, kInvalidPathId);
    EXPECT_EQ(guide.node(path).tag, doc.node(id).tag);
    EXPECT_EQ(guide.node(path).depth, doc.node(id).depth);
  }
}

TEST(DataGuideTest, PathsWithTagFindsAllContexts) {
  Document doc = MustParse(kSample);
  DataGuide guide = DataGuide::Build(doc);
  // "author" occurs under article and under book: two distinct paths.
  EXPECT_EQ(guide.PathsWithTag(doc.FindTag("author")).size(), 2u);
  EXPECT_EQ(guide.PathsWithTag(doc.FindTag("dblp")).size(), 1u);
  EXPECT_TRUE(guide.PathsWithTag(xml::kInvalidTagId).empty());
}

TEST(DataGuideTest, ChildAndDescendantTags) {
  Document doc = MustParse(kSample);
  DataGuide guide = DataGuide::Build(doc);
  PathId root = guide.root();
  std::vector<xml::TagId> child_tags = guide.ChildTags(root);
  EXPECT_EQ(child_tags.size(), 2u);  // article, book
  const std::vector<xml::TagId>& descendants = guide.DescendantTags(root);
  // article, book, @key, author, title, year.
  EXPECT_EQ(descendants.size(), 6u);
  EXPECT_TRUE(std::is_sorted(descendants.begin(), descendants.end()));
}

TEST(DataGuideTest, DescendantCountsAggregate) {
  Document doc = MustParse(kSample);
  DataGuide guide = DataGuide::Build(doc);
  // Three author elements below the root in total.
  EXPECT_EQ(guide.DescendantTagCount(guide.root(), doc.FindTag("author")),
            3u);
  EXPECT_EQ(guide.ChildTagCount(guide.root(), doc.FindTag("article")), 1u);
  EXPECT_EQ(guide.ChildTagCount(guide.root(), doc.FindTag("author")), 0u);
}

TEST(DataGuideTest, PathString) {
  Document doc = MustParse(kSample);
  DataGuide guide = DataGuide::Build(doc);
  PathId article = guide.FindChild(guide.root(), doc.FindTag("article"));
  PathId author = guide.FindChild(article, doc.FindTag("author"));
  EXPECT_EQ(guide.PathString(doc, author), "/dblp/article/author");
}

TEST(DataGuideTest, PersistenceRoundTrip) {
  Document doc = MustParse(kSample);
  DataGuide guide = DataGuide::Build(doc);
  std::string buffer;
  Encoder encoder(&buffer);
  guide.EncodeTo(&encoder);
  Decoder decoder(buffer);
  auto decoded = DataGuide::DecodeFrom(&decoder);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->num_paths(), guide.num_paths());
  for (PathId p = 0; p < guide.num_paths(); ++p) {
    EXPECT_EQ(decoded->node(p).tag, guide.node(p).tag);
    EXPECT_EQ(decoded->node(p).count, guide.node(p).count);
    EXPECT_EQ(decoded->node(p).text_count, guide.node(p).text_count);
  }
  for (NodeId id = 0; id < doc.num_nodes(); ++id) {
    EXPECT_EQ(decoded->PathOf(id), guide.PathOf(id));
  }
}

// ------------------------------------------------------------- TagStreams

TEST(TagStreamsTest, StreamsAreDocumentOrderedAndComplete) {
  Document doc = MustParse(kSample);
  TagStreams streams = TagStreams::Build(doc);
  uint64_t total = 0;
  for (xml::TagId tag = 0; tag < doc.num_tags(); ++tag) {
    std::vector<NodeId> stream = streams.Decode(tag);
    EXPECT_EQ(stream.size(), streams.count(tag));
    total += stream.size();
    for (size_t i = 0; i < stream.size(); ++i) {
      EXPECT_EQ(doc.node(stream[i]).tag, tag);
      if (i > 0) {
        EXPECT_LT(stream[i - 1], stream[i]);
      }
    }
  }
  // Every non-text node appears in exactly one stream.
  uint64_t non_text = 0;
  for (NodeId id = 0; id < doc.num_nodes(); ++id) {
    if (doc.node(id).kind != xml::NodeKind::kText) ++non_text;
  }
  EXPECT_EQ(total, non_text);
}

TEST(TagStreamsTest, OutOfRangeTagIsEmpty) {
  Document doc = MustParse(kSample);
  TagStreams streams = TagStreams::Build(doc);
  EXPECT_TRUE(streams.blocks(xml::kInvalidTagId).empty());
  EXPECT_TRUE(streams.blocks(999).empty());
  EXPECT_EQ(streams.count(999), 0u);
}

TEST(TagStreamsTest, PersistenceRoundTrip) {
  Document doc = MustParse(kSample);
  TagStreams streams = TagStreams::Build(doc);
  std::string buffer;
  Encoder encoder(&buffer);
  streams.EncodeTo(&encoder);
  Decoder decoder(buffer);
  auto decoded = TagStreams::DecodeFrom(&decoder);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->num_tags(), streams.num_tags());
  for (xml::TagId tag = 0; tag < streams.num_tags(); ++tag) {
    EXPECT_EQ(streams.Decode(tag), decoded->Decode(tag));
  }
}

// -------------------------------------------------------------- TermIndex

TEST(TermIndexTest, PostingsFindValueNodes) {
  Document doc = MustParse(kSample);
  TermIndex terms = TermIndex::Build(doc);
  // "lu" occurs in one author; "xml" in one title; "search" in two titles.
  EXPECT_EQ(terms.DecodePostings("lu").size(), 1u);
  EXPECT_EQ(terms.DecodePostings("xml").size(), 1u);
  EXPECT_EQ(terms.DecodePostings("search").size(), 2u);
  EXPECT_TRUE(terms.DecodePostings("absent").empty());
  EXPECT_EQ(terms.PostingsFor("absent"), nullptr);
  for (NodeId id : terms.DecodePostings("search")) {
    EXPECT_EQ(doc.TagName(id), "title");
  }
}

TEST(TermIndexTest, TermsAreLowercasedTokens) {
  Document doc = MustParse("<a><b>Hello, WORLD-42!</b></a>");
  TermIndex terms = TermIndex::Build(doc);
  EXPECT_EQ(terms.DocFrequency("hello"), 1u);
  EXPECT_EQ(terms.DocFrequency("world"), 1u);
  EXPECT_EQ(terms.DocFrequency("42"), 1u);
  EXPECT_EQ(terms.DocFrequency("Hello"), 0u);  // queries must be lowercase
}

TEST(TermIndexTest, AttributesAreValueNodes) {
  Document doc = MustParse(kSample);
  TermIndex terms = TermIndex::Build(doc);
  ASSERT_EQ(terms.DecodePostings("a1").size(), 1u);
  NodeId attr = terms.DecodePostings("a1")[0];
  EXPECT_EQ(doc.node(attr).kind, xml::NodeKind::kAttribute);
  EXPECT_EQ(doc.TagName(attr), "@key");
}

TEST(TermIndexTest, FrequenciesAndIdfInputs) {
  Document doc = MustParse("<r><t>x x x y</t><t>x z</t></r>");
  TermIndex terms = TermIndex::Build(doc);
  EXPECT_EQ(terms.num_value_nodes(), 2u);
  EXPECT_EQ(terms.DocFrequency("x"), 2u);
  EXPECT_EQ(terms.CollectionFrequency("x"), 4u);
  std::vector<NodeId> postings = terms.DecodePostings("x");
  ASSERT_EQ(postings.size(), 2u);
  EXPECT_EQ(terms.TermFrequencyIn("x", postings[0]), 3u);
  EXPECT_EQ(terms.TermFrequencyIn("x", postings[1]), 1u);
  EXPECT_EQ(terms.TermFrequencyIn("y", postings[1]), 0u);
}

TEST(TermIndexTest, PerTagTries) {
  Document doc = MustParse(kSample);
  TermIndex terms = TermIndex::Build(doc);
  const Trie* title_trie = terms.term_trie_for_tag(doc.FindTag("title"));
  ASSERT_NE(title_trie, nullptr);
  EXPECT_TRUE(title_trie->Contains("xml"));
  EXPECT_FALSE(title_trie->Contains("jiaheng"));
  const Trie* author_trie = terms.term_trie_for_tag(doc.FindTag("author"));
  ASSERT_NE(author_trie, nullptr);
  EXPECT_TRUE(author_trie->Contains("jiaheng"));
  EXPECT_EQ(terms.term_trie_for_tag(doc.FindTag("dblp")), nullptr);
}

TEST(TermIndexTest, PersistenceRoundTrip) {
  Document doc = MustParse(kSample);
  TermIndex terms = TermIndex::Build(doc);
  std::string buffer;
  Encoder encoder(&buffer);
  terms.EncodeTo(&encoder);
  Decoder decoder(buffer);
  auto decoded = TermIndex::DecodeFrom(&decoder);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->num_terms(), terms.num_terms());
  EXPECT_EQ(decoded->num_value_nodes(), terms.num_value_nodes());
  EXPECT_EQ(decoded->DocFrequency("search"), terms.DocFrequency("search"));
  EXPECT_EQ(decoded->CollectionFrequency("search"),
            terms.CollectionFrequency("search"));
  EXPECT_EQ(decoded->term_trie().Complete("s", 5),
            terms.term_trie().Complete("s", 5));
}

// -------------------------------------------------------- IndexedDocument

TEST(IndexedDocumentTest, BuildsAllComponents) {
  index::IndexedDocument indexed = MustIndex(kSample);
  EXPECT_GT(indexed.dataguide().num_paths(), 0);
  EXPECT_GT(indexed.tag_trie().num_keys(), 0u);
  EXPECT_EQ(indexed.containment().size(),
            static_cast<size_t>(indexed.document().num_nodes()));
  EXPECT_GT(indexed.build_stats().total_ms, 0.0);
  EXPECT_GT(indexed.build_stats().total_bytes(), 0u);
}

TEST(IndexedDocumentTest, TagTrieWeightsAreCounts) {
  index::IndexedDocument indexed = MustIndex(kSample);
  EXPECT_EQ(indexed.tag_trie().WeightOf("author"), 3u);
  EXPECT_EQ(indexed.tag_trie().WeightOf("article"), 1u);
  EXPECT_EQ(indexed.tag_trie().WeightOf("@key"), 2u);
}

TEST(IndexedDocumentTest, SaveLoadRoundTrip) {
  index::IndexedDocument indexed = MustIndex(kSample);
  std::string path = ::testing::TempDir() + "/lotusx_index_test.ltsx";
  ASSERT_TRUE(indexed.SaveTo(path).ok());
  auto loaded = index::IndexedDocument::LoadFrom(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Document& a = indexed.document();
  const Document& b = loaded->document();
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  for (NodeId id = 0; id < a.num_nodes(); ++id) {
    EXPECT_EQ(a.node(id).kind, b.node(id).kind);
    EXPECT_EQ(a.node(id).parent, b.node(id).parent);
    EXPECT_EQ(a.node(id).subtree_end, b.node(id).subtree_end);
  }
  EXPECT_EQ(loaded->dataguide().num_paths(), indexed.dataguide().num_paths());
  EXPECT_EQ(loaded->terms().num_terms(), indexed.terms().num_terms());
  EXPECT_EQ(loaded->tag_trie().WeightOf("author"), 3u);
  std::remove(path.c_str());
}

TEST(IndexedDocumentTest, LoadRejectsGarbage) {
  std::string path = ::testing::TempDir() + "/lotusx_garbage.ltsx";
  ASSERT_TRUE(WriteStringToFile(path, "not an index at all").ok());
  auto loaded = index::IndexedDocument::LoadFrom(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
  std::remove(path.c_str());
}

TEST(IndexedDocumentTest, LoadRejectsTruncation) {
  index::IndexedDocument indexed = MustIndex(kSample);
  std::string path = ::testing::TempDir() + "/lotusx_trunc.ltsx";
  ASSERT_TRUE(indexed.SaveTo(path).ok());
  std::string image;
  ASSERT_TRUE(ReadFileToString(path, &image).ok());
  ASSERT_TRUE(
      WriteStringToFile(path, std::string_view(image).substr(0, image.size() / 2))
          .ok());
  EXPECT_FALSE(index::IndexedDocument::LoadFrom(path).ok());
  std::remove(path.c_str());
}

TEST(IndexedDocumentTest, DecodeRejectsStructurallyInvalidDocuments) {
  // Build document sections by hand to hit each validation branch.
  auto decode = [](const std::string& buffer) {
    Decoder decoder(buffer);
    return DecodeDocument(&decoder).status();
  };
  auto header = [](Encoder* encoder) {
    encoder->PutVarint64(2);  // two tags
    encoder->PutString("a");
    encoder->PutString("@k");
  };
  {
    // Text node as root.
    std::string buffer;
    Encoder encoder(&buffer);
    header(&encoder);
    encoder.PutVarint64(1);
    encoder.PutVarint32(2);  // kText
    encoder.PutVarint32(0);  // no parent
    encoder.PutString("boom");
    EXPECT_TRUE(decode(buffer).IsCorruption());
  }
  {
    // Attribute whose parent is an attribute.
    std::string buffer;
    Encoder encoder(&buffer);
    header(&encoder);
    encoder.PutVarint64(3);
    encoder.PutVarint32(0);  // element root, tag a
    encoder.PutVarint32(0);
    encoder.PutVarint32(0);
    encoder.PutVarint32(1);  // attribute under root
    encoder.PutVarint32(1);
    encoder.PutVarint32(1);
    encoder.PutString("v");
    encoder.PutVarint32(1);  // attribute under the ATTRIBUTE
    encoder.PutVarint32(2);
    encoder.PutVarint32(1);
    encoder.PutString("w");
    EXPECT_TRUE(decode(buffer).IsCorruption());
  }
  {
    // Document-order violation: child appended after its parent closed.
    std::string buffer;
    Encoder encoder(&buffer);
    encoder.PutVarint64(3);
    encoder.PutString("a");
    encoder.PutString("b");
    encoder.PutString("c");
    encoder.PutVarint64(4);
    // a(root), b under a, c under a, then ANOTHER node under b: b's
    // subtree closed when c arrived.
    encoder.PutVarint32(0); encoder.PutVarint32(0); encoder.PutVarint32(0);
    encoder.PutVarint32(0); encoder.PutVarint32(1); encoder.PutVarint32(1);
    encoder.PutVarint32(0); encoder.PutVarint32(1); encoder.PutVarint32(2);
    encoder.PutVarint32(0); encoder.PutVarint32(2); encoder.PutVarint32(2);
    EXPECT_TRUE(decode(buffer).IsCorruption());
  }
  {
    // Self/forward parent reference.
    std::string buffer;
    Encoder encoder(&buffer);
    header(&encoder);
    encoder.PutVarint64(2);
    encoder.PutVarint32(0); encoder.PutVarint32(0); encoder.PutVarint32(0);
    encoder.PutVarint32(0); encoder.PutVarint32(3); encoder.PutVarint32(0);
    EXPECT_TRUE(decode(buffer).IsCorruption());
  }
}

TEST(IndexedDocumentTest, SaveLoadOnGeneratedCorpus) {
  datagen::DblpOptions options;
  options.num_publications = 150;
  index::IndexedDocument indexed(datagen::GenerateDblp(options));
  std::string path = ::testing::TempDir() + "/lotusx_dblp.ltsx";
  ASSERT_TRUE(indexed.SaveTo(path).ok());
  auto loaded = index::IndexedDocument::LoadFrom(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->document().num_nodes(), indexed.document().num_nodes());
  // The rebuilt derived indexes must agree with the originals.
  for (xml::TagId tag = 0; tag < indexed.document().num_tags(); ++tag) {
    EXPECT_EQ(loaded->tag_streams().count(tag),
              indexed.tag_streams().count(tag));
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lotusx::index
