// Named regressions for bugs found during development (each one was
// caught by an oracle or fuzz sweep, fixed, and is pinned here with the
// smallest reproducer so it can never silently return).

#include <gtest/gtest.h>

#include "common/coding.h"
#include "index/indexed_document.h"
#include "tests/test_util.h"
#include "twig/evaluator.h"
#include "rewrite/rewriter.h"
#include "twig/query_parser.h"

namespace lotusx {
namespace {

using lotusx::testing::BruteForceMatches;
using lotusx::testing::MustIndex;

twig::TwigQuery Q(std::string_view text) {
  auto result = twig::ParseQuery(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

// Bug 1: recursive same-tag queries (//s//s) paired a stack element with
// *itself* during path-solution expansion — an element is not a proper
// ancestor of itself, but the push-time containment invariant admitted
// it. Fixed in stack_common.cc with an explicit self-exclusion.
// Symptom: PathStack/TwigStack returned 7 matches instead of 2 on this
// document.
TEST(RegressionTest, RecursiveTagSelfPairing) {
  auto indexed = MustIndex(R"(<r>
    <s><s><t>one</t></s><t>two</t></s>
    <s><u><s><t>three</t><u/></s></u></s>
    <t>four</t>
  </r>)");
  twig::TwigQuery query = Q("//s//s//t");
  std::vector<twig::Match> expected = BruteForceMatches(indexed, query);
  ASSERT_EQ(expected.size(), 2u);
  for (twig::Algorithm algorithm :
       {twig::Algorithm::kPathStack, twig::Algorithm::kTwigStack,
        twig::Algorithm::kTJFast, twig::Algorithm::kStructuralJoin}) {
    twig::EvalOptions options;
    options.algorithm = algorithm;
    auto result = twig::Evaluate(indexed, query, options);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->matches, expected)
        << twig::AlgorithmName(algorithm);
  }
}

// Bug 2: when one branch's leaf stream was exhausted, TwigStack's getNext
// recursed into the dead branch and returned an exhausted node, and the
// run terminated while the *sibling* branch still had path solutions to
// emit (here: the (r, t4) solution for the r/t branch). Fixed by masking
// dead subtrees in getNext. Symptom: 0 matches instead of 3.
TEST(RegressionTest, TwigStackDeadBranchMasking) {
  auto indexed = MustIndex(R"(<r>
    <s><s><t>one</t></s><t>two</t></s>
    <s><u><s><t>three</t><u/></s></u></s>
    <t>four</t>
  </r>)");
  twig::TwigQuery query = Q("//r[t]//s[t]");
  twig::EvalOptions options;
  options.algorithm = twig::Algorithm::kTwigStack;
  auto result = twig::Evaluate(indexed, query, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->matches.size(), 3u);
  EXPECT_EQ(result->matches, BruteForceMatches(indexed, query));
}

// Bug 3 (found by the index-image fuzzer): DecodeDocument accepted images
// whose node table named a text/attribute node as a parent, or violated
// document order — both then aborted inside Document's internal CHECKs
// instead of returning Status::Corruption. The decoder now validates
// kinds and the preorder discipline itself.
TEST(RegressionTest, CorruptIndexImageParentKinds) {
  std::string buffer;
  Encoder encoder(&buffer);
  encoder.PutVarint64(2);  // tag table: "a", "@k"
  encoder.PutString("a");
  encoder.PutString("@k");
  encoder.PutVarint64(2);  // two nodes
  // Node 0: TEXT as the root.
  encoder.PutVarint32(2);
  encoder.PutVarint32(0);
  encoder.PutString("boom");
  // Node 1 irrelevant; decoding must already have failed.
  encoder.PutVarint32(0);
  encoder.PutVarint32(1);
  encoder.PutVarint32(0);
  Decoder decoder(buffer);
  auto decoded = index::DecodeDocument(&decoder);
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsCorruption());
}

// Bug 4 (design, caught by the randomized round-trip sweep): parsing
// query.ToString() renumbers nodes (the parser builds branch subtrees
// depth-first), so object equality is the wrong round-trip property; the
// canonical form must be a fixed point instead.
TEST(RegressionTest, CanonicalFormIsFixpointUnderRenumbering) {
  // A query whose branch subtree is built *after* the spine: the reparse
  // assigns different node ids but must render identically.
  twig::TwigQuery query;
  twig::QueryNodeId category = query.AddRoot("category");
  query.AddChild(category, twig::Axis::kDescendant, "@id");  // spine first
  twig::QueryNodeId product =
      query.AddChild(category, twig::Axis::kChild, "product");
  query.AddChild(product, twig::Axis::kDescendant, "name");
  query.SetOutput(product);
  std::string rendered = query.ToString();
  auto reparsed = twig::ParseQuery(rendered);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->ToString(), rendered);
}

// Bug 5 (tuning, caught by integration test): "drop branch" (penalty 2.0)
// tied with "respell" for a 1-edit typo and won the tie-break, so the
// rewriter deleted the user's box instead of fixing the spelling. Typo
// repair must now always be cheaper than structural surgery.
TEST(RegressionTest, RespellBeatsBranchDropOnTypos) {
  auto indexed = MustIndex(R"(<dblp>
    <article><title>x</title></article>
    <article><title>y</title></article>
  </dblp>)");
  rewrite::Rewriter rewriter(indexed);
  auto outcome = rewriter.Rewrite(Q("//article/titel"));
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome->applied.size(), 1u);
  EXPECT_NE(outcome->applied[0].find("respell"), std::string::npos)
      << outcome->applied[0];
  EXPECT_EQ(outcome->result.matches.size(), 2u);
}

}  // namespace
}  // namespace lotusx
