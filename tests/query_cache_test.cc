#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "lotusx/engine.h"
#include "lotusx/query_cache.h"
#include "twig/query_parser.h"

namespace lotusx {
namespace {

// ------------------------------------------------------------- LruCache

TEST(LruCacheTest, InsertLookup) {
  LruCache<int> cache(2);
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  cache.Insert("a", 1);
  ASSERT_NE(cache.Lookup("a"), nullptr);
  EXPECT_EQ(*cache.Lookup("a"), 1);
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<int> cache(2);
  cache.Insert("a", 1);
  cache.Insert("b", 2);
  ASSERT_NE(cache.Lookup("a"), nullptr);  // refresh a
  cache.Insert("c", 3);                   // evicts b
  EXPECT_EQ(cache.Lookup("b"), nullptr);
  EXPECT_NE(cache.Lookup("a"), nullptr);
  EXPECT_NE(cache.Lookup("c"), nullptr);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCacheTest, InsertRefreshesExistingKey) {
  LruCache<int> cache(2);
  cache.Insert("a", 1);
  cache.Insert("b", 2);
  cache.Insert("a", 10);  // refresh, not duplicate
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(*cache.Lookup("a"), 10);
  cache.Insert("c", 3);  // evicts b (a was refreshed)
  EXPECT_EQ(cache.Lookup("b"), nullptr);
}

TEST(LruCacheTest, Clear) {
  LruCache<int> cache(4);
  cache.Insert("a", 1);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup("a"), nullptr);
}

TEST(LruCacheTest, CapacityOneWorks) {
  LruCache<int> cache(1);
  cache.Insert("a", 1);
  cache.Insert("b", 2);
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  EXPECT_EQ(*cache.Lookup("b"), 2);
}

// ------------------------------------------------------ ShardedLruCache

TEST(ShardedLruCacheTest, InsertLookupByValue) {
  ShardedLruCache<int> cache(8);
  EXPECT_FALSE(cache.Lookup("a").has_value());
  cache.Insert("a", 1);
  std::optional<int> found = cache.Lookup("a");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, 1);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ShardedLruCacheTest, InsertRefreshesExistingKey) {
  ShardedLruCache<int> cache(8);
  cache.Insert("a", 1);
  cache.Insert("a", 10);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(*cache.Lookup("a"), 10);
}

TEST(ShardedLruCacheTest, EvictsWithinShards) {
  // 4 entries over 4 shards: per-shard capacity 1, so two keys hashing to
  // one shard evict each other while other shards are untouched.
  ShardedLruCache<int> cache(4, /*num_shards=*/4);
  EXPECT_EQ(cache.capacity(), 4u);
  EXPECT_EQ(cache.num_shards(), 4u);
  for (int i = 0; i < 64; ++i) {
    cache.Insert("key" + std::to_string(i), i);
  }
  // Eviction keeps the total at or under the effective capacity.
  EXPECT_LE(cache.size(), cache.capacity());
  EXPECT_GT(cache.size(), 0u);
}

TEST(ShardedLruCacheTest, ShardCountClampedToCapacity) {
  ShardedLruCache<int> cache(2, /*num_shards=*/16);
  EXPECT_EQ(cache.num_shards(), 2u);
  EXPECT_EQ(cache.capacity(), 2u);
}

TEST(ShardedLruCacheTest, Clear) {
  ShardedLruCache<int> cache(8);
  cache.Insert("a", 1);
  cache.Insert("b", 2);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup("a").has_value());
}

TEST(ShardedLruCacheTest, StatsAccumulate) {
  ShardedLruCache<int> cache(8);
  cache.Insert("a", 1);
  cache.Lookup("a");
  cache.Lookup("a");
  cache.Lookup("missing");
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ShardedLruCacheTest, RegistryCountersMirrorInstanceStats) {
  // A distinct metric prefix keeps this test independent of the Engine's
  // "lotusx_cache" family (registry counters are process-wide totals).
  metrics::Registry& registry = metrics::Registry::Default();
  ShardedLruCache<int> cache(4, /*num_shards=*/2, &registry,
                             "lotusx_testcache");
  for (int i = 0; i < 16; ++i) {
    cache.Insert("key" + std::to_string(i), i);
  }
  cache.Lookup("key15");
  cache.Lookup("definitely-missing");
  metrics::MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterTotal("lotusx_testcache_hits_total"),
            cache.hits());
  EXPECT_EQ(snapshot.CounterTotal("lotusx_testcache_misses_total"),
            cache.misses());
  EXPECT_EQ(snapshot.CounterTotal("lotusx_testcache_evictions_total"),
            cache.evictions());
  // 16 inserts into capacity 4 must have evicted something.
  EXPECT_GT(cache.evictions(), 0u);
}

// ------------------------------------------------------ Engine integration

constexpr std::string_view kXml = R"(<dblp>
  <article><author>lu</author><title>one</title></article>
  <article><author>lin</author><title>two</title></article>
</dblp>)";

TEST(EngineCacheTest, HitsServeIdenticalResults) {
  auto engine = Engine::FromXmlText(kXml);
  ASSERT_TRUE(engine.ok());
  engine->EnableResultCache(8);
  auto first = engine->Search("//article/title");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(engine->cache_hits(), 0u);
  EXPECT_EQ(engine->cache_misses(), 1u);
  auto second = engine->Search("//article/title");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(engine->cache_hits(), 1u);
  ASSERT_EQ(second->results.size(), first->results.size());
  for (size_t i = 0; i < first->results.size(); ++i) {
    EXPECT_EQ(second->results[i].output, first->results[i].output);
    EXPECT_DOUBLE_EQ(second->results[i].score, first->results[i].score);
  }
}

TEST(EngineCacheTest, DifferentOptionsMissTheCache) {
  auto engine = Engine::FromXmlText(kXml);
  ASSERT_TRUE(engine.ok());
  engine->EnableResultCache(8);
  ASSERT_TRUE(engine->Search("//article/title").ok());
  SearchOptions options;
  options.ranking.top_k = 1;
  ASSERT_TRUE(engine->Search("//article/title", options).ok());
  EXPECT_EQ(engine->cache_hits(), 0u);
  EXPECT_EQ(engine->cache_misses(), 2u);
}

TEST(EngineCacheTest, NearEqualRankingWeightsDoNotCollide) {
  // Regression: the cache key used to render ranking weights with
  // std::to_string (6 fixed decimals), so weights differing below 1e-6
  // collided on one key and the second search returned the first's
  // cached ranking. The key now encodes the exact IEEE-754 bits.
  SearchOptions a;
  a.ranking.content_weight = 1.0;
  SearchOptions b;
  b.ranking.content_weight = 1.0000001;  // to_string: "1.000000" for both
  ASSERT_EQ(std::to_string(a.ranking.content_weight),
            std::to_string(b.ranking.content_weight));

  auto engine = Engine::FromXmlText(kXml);
  ASSERT_TRUE(engine.ok());
  engine->EnableResultCache(8);
  ASSERT_TRUE(engine->Search("//article/title", a).ok());
  ASSERT_TRUE(engine->Search("//article/title", b).ok());
  EXPECT_EQ(engine->cache_hits(), 0u);
  EXPECT_EQ(engine->cache_misses(), 2u);
  // Identical options still hit.
  ASSERT_TRUE(engine->Search("//article/title", a).ok());
  EXPECT_EQ(engine->cache_hits(), 1u);
}

TEST(EngineCacheTest, DisabledByDefaultAndDisableable) {
  auto engine = Engine::FromXmlText(kXml);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->Search("//article").ok());
  EXPECT_EQ(engine->cache_misses(), 0u);
  engine->EnableResultCache(4);
  ASSERT_TRUE(engine->Search("//article").ok());
  EXPECT_EQ(engine->cache_misses(), 1u);
  engine->EnableResultCache(0);
  ASSERT_TRUE(engine->Search("//article").ok());
  EXPECT_EQ(engine->cache_misses(), 0u);
}

// -------------------------------------------------------- SearchCacheKey

// The pinning companion to the static_asserts in engine.cc: whenever an
// option struct grows, those asserts force a revisit of SearchCacheKey,
// and this test is where the new field's mutation gets added. Every
// result-or-stats-affecting field must produce a distinct key.
TEST(SearchCacheKeyTest, EveryOptionFieldChangesTheKey) {
  const twig::TwigQuery query =
      twig::ParseQuery("//article[author]/title").value();

  const std::vector<std::pair<std::string, std::function<void(SearchOptions&)>>>
      mutations = {
          {"eval.algorithm",
           [](SearchOptions& o) {
             o.eval.algorithm = twig::Algorithm::kTwigStack;
           }},
          {"eval.apply_order",
           [](SearchOptions& o) { o.eval.apply_order = false; }},
          {"eval.integrate_order",
           [](SearchOptions& o) { o.eval.integrate_order = false; }},
          {"eval.reorder_binary_joins",
           [](SearchOptions& o) { o.eval.reorder_binary_joins = true; }},
          {"eval.schema_prune_streams",
           [](SearchOptions& o) { o.eval.schema_prune_streams = true; }},
          {"rewrite_on_empty",
           [](SearchOptions& o) { o.rewrite_on_empty = !o.rewrite_on_empty; }},
          {"ranking.content_weight",
           [](SearchOptions& o) { o.ranking.content_weight += 0.25; }},
          {"ranking.structure_weight",
           [](SearchOptions& o) { o.ranking.structure_weight += 0.25; }},
          {"ranking.specificity_weight",
           [](SearchOptions& o) { o.ranking.specificity_weight += 0.25; }},
          {"ranking.top_k", [](SearchOptions& o) { o.ranking.top_k += 7; }},
          {"rewrite.min_results",
           [](SearchOptions& o) { o.rewrite.min_results += 1; }},
          {"rewrite.max_evaluations",
           [](SearchOptions& o) { o.rewrite.max_evaluations += 1; }},
          {"rewrite.max_penalty",
           [](SearchOptions& o) { o.rewrite.max_penalty += 0.5; }},
          {"rewrite.relax_axes",
           [](SearchOptions& o) {
             o.rewrite.relax_axes = !o.rewrite.relax_axes;
           }},
          {"rewrite.substitute_tags",
           [](SearchOptions& o) {
             o.rewrite.substitute_tags = !o.rewrite.substitute_tags;
           }},
          {"rewrite.relax_predicates",
           [](SearchOptions& o) {
             o.rewrite.relax_predicates = !o.rewrite.relax_predicates;
           }},
          {"rewrite.drop_leaves",
           [](SearchOptions& o) {
             o.rewrite.drop_leaves = !o.rewrite.drop_leaves;
           }},
      };

  std::map<std::string, std::string> key_to_field;
  key_to_field[SearchCacheKey(query, SearchOptions{})] = "<defaults>";
  for (const auto& [field, mutate] : mutations) {
    SearchOptions options;
    mutate(options);
    const std::string key = SearchCacheKey(query, options);
    auto [it, inserted] = key_to_field.emplace(key, field);
    EXPECT_TRUE(inserted) << "mutating " << field
                          << " collided with " << it->second
                          << " on key: " << key;
  }
}

TEST(SearchCacheKeyTest, DistinctQueriesGetDistinctKeys) {
  const twig::TwigQuery a = twig::ParseQuery("//article/title").value();
  const twig::TwigQuery b = twig::ParseQuery("//article[author]/title").value();
  EXPECT_NE(SearchCacheKey(a, SearchOptions{}),
            SearchCacheKey(b, SearchOptions{}));
}

TEST(SearchCacheKeyTest, KeyIsDeterministic) {
  const twig::TwigQuery query = twig::ParseQuery("//book//title").value();
  SearchOptions options;
  options.ranking.content_weight = 0.75;
  EXPECT_EQ(SearchCacheKey(query, options), SearchCacheKey(query, options));
}

}  // namespace
}  // namespace lotusx
