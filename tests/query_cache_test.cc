#include <gtest/gtest.h>

#include "lotusx/engine.h"
#include "lotusx/query_cache.h"

namespace lotusx {
namespace {

// ------------------------------------------------------------- LruCache

TEST(LruCacheTest, InsertLookup) {
  LruCache<int> cache(2);
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  cache.Insert("a", 1);
  ASSERT_NE(cache.Lookup("a"), nullptr);
  EXPECT_EQ(*cache.Lookup("a"), 1);
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<int> cache(2);
  cache.Insert("a", 1);
  cache.Insert("b", 2);
  ASSERT_NE(cache.Lookup("a"), nullptr);  // refresh a
  cache.Insert("c", 3);                   // evicts b
  EXPECT_EQ(cache.Lookup("b"), nullptr);
  EXPECT_NE(cache.Lookup("a"), nullptr);
  EXPECT_NE(cache.Lookup("c"), nullptr);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCacheTest, InsertRefreshesExistingKey) {
  LruCache<int> cache(2);
  cache.Insert("a", 1);
  cache.Insert("b", 2);
  cache.Insert("a", 10);  // refresh, not duplicate
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(*cache.Lookup("a"), 10);
  cache.Insert("c", 3);  // evicts b (a was refreshed)
  EXPECT_EQ(cache.Lookup("b"), nullptr);
}

TEST(LruCacheTest, Clear) {
  LruCache<int> cache(4);
  cache.Insert("a", 1);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup("a"), nullptr);
}

TEST(LruCacheTest, CapacityOneWorks) {
  LruCache<int> cache(1);
  cache.Insert("a", 1);
  cache.Insert("b", 2);
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  EXPECT_EQ(*cache.Lookup("b"), 2);
}

// ------------------------------------------------------ Engine integration

constexpr std::string_view kXml = R"(<dblp>
  <article><author>lu</author><title>one</title></article>
  <article><author>lin</author><title>two</title></article>
</dblp>)";

TEST(EngineCacheTest, HitsServeIdenticalResults) {
  auto engine = Engine::FromXmlText(kXml);
  ASSERT_TRUE(engine.ok());
  engine->EnableResultCache(8);
  auto first = engine->Search("//article/title");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(engine->cache_hits(), 0u);
  EXPECT_EQ(engine->cache_misses(), 1u);
  auto second = engine->Search("//article/title");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(engine->cache_hits(), 1u);
  ASSERT_EQ(second->results.size(), first->results.size());
  for (size_t i = 0; i < first->results.size(); ++i) {
    EXPECT_EQ(second->results[i].output, first->results[i].output);
    EXPECT_DOUBLE_EQ(second->results[i].score, first->results[i].score);
  }
}

TEST(EngineCacheTest, DifferentOptionsMissTheCache) {
  auto engine = Engine::FromXmlText(kXml);
  ASSERT_TRUE(engine.ok());
  engine->EnableResultCache(8);
  ASSERT_TRUE(engine->Search("//article/title").ok());
  SearchOptions options;
  options.ranking.top_k = 1;
  ASSERT_TRUE(engine->Search("//article/title", options).ok());
  EXPECT_EQ(engine->cache_hits(), 0u);
  EXPECT_EQ(engine->cache_misses(), 2u);
}

TEST(EngineCacheTest, DisabledByDefaultAndDisableable) {
  auto engine = Engine::FromXmlText(kXml);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->Search("//article").ok());
  EXPECT_EQ(engine->cache_misses(), 0u);
  engine->EnableResultCache(4);
  ASSERT_TRUE(engine->Search("//article").ok());
  EXPECT_EQ(engine->cache_misses(), 1u);
  engine->EnableResultCache(0);
  ASSERT_TRUE(engine->Search("//article").ok());
  EXPECT_EQ(engine->cache_misses(), 0u);
}

}  // namespace
}  // namespace lotusx
