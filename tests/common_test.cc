#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <thread>
#include <vector>

#include "common/arena.h"
#include "common/coding.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/status.h"
#include "common/status_or.h"
#include "common/string_util.h"

namespace lotusx {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::NotFound("missing index");
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.IsNotFound());
  EXPECT_EQ(status.message(), "missing index");
  EXPECT_EQ(status.ToString(), "NotFound: missing index");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::Corruption("x"), Status::Corruption("x"));
  EXPECT_FALSE(Status::Corruption("x") == Status::Corruption("y"));
  EXPECT_FALSE(Status::Corruption("x") == Status::IOError("x"));
}

TEST(StatusTest, AllFactoryCodesRoundTrip) {
  EXPECT_TRUE(Status::InvalidArgument("m").IsInvalidArgument());
  EXPECT_TRUE(Status::Corruption("m").IsCorruption());
  EXPECT_TRUE(Status::IOError("m").IsIOError());
  EXPECT_EQ(Status::Unimplemented("m").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("m").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::OutOfRange("m").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::AlreadyExists("m").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("m").code(),
            StatusCode::kFailedPrecondition);
}

Status FailsIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnIfError(int x) {
  LOTUSX_RETURN_IF_ERROR(FailsIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_TRUE(UsesReturnIfError(-1).IsInvalidArgument());
}

// -------------------------------------------------------------- StatusOr

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x;
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = ParsePositive(5);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 5);
  EXPECT_EQ(result.value(), 5);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = ParsePositive(-1);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

StatusOr<int> UsesAssignOrReturn(int x) {
  LOTUSX_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v + 1;
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  EXPECT_EQ(UsesAssignOrReturn(1).value(), 2);
  EXPECT_FALSE(UsesAssignOrReturn(0).ok());
}

TEST(StatusOrTest, MoveOnlyType) {
  StatusOr<std::unique_ptr<int>> result = std::make_unique<int>(7);
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = std::move(result).value();
  EXPECT_EQ(*owned, 7);
}

TEST(StatusOrDeathTest, ValueOnErrorDies) {
  StatusOr<int> result = Status::NotFound("gone");
  EXPECT_DEATH(result.value(), "NotFound");
}

// ------------------------------------------------------------ StringUtil

TEST(StringUtilTest, SplitKeepsEmptyPieces) {
  EXPECT_EQ(Split("a,,b", ','),
            (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StringUtilTest, SplitSkipEmpty) {
  EXPECT_EQ(SplitSkipEmpty(",a,,b,", ','),
            (std::vector<std::string>{"a", "b"}));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, "/"), "a/b/c");
  EXPECT_EQ(Join({}, "/"), "");
  EXPECT_EQ(Join({"x"}, "/"), "x");
}

TEST(StringUtilTest, CaseAndTrim) {
  EXPECT_EQ(ToLowerAscii("AbC-12"), "abc-12");
  EXPECT_EQ(TrimAscii("  \t x y \r\n"), "x y");
  EXPECT_EQ(TrimAscii(""), "");
  EXPECT_EQ(TrimAscii("   "), "");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("lotusx", "lotus"));
  EXPECT_FALSE(StartsWith("lo", "lotus"));
  EXPECT_TRUE(EndsWith("query.xml", ".xml"));
  EXPECT_FALSE(EndsWith("xml", ".xml"));
}

TEST(StringUtilTest, TokenizeKeywords) {
  EXPECT_EQ(TokenizeKeywords("Data-Engineering 2012, XML!"),
            (std::vector<std::string>{"data", "engineering", "2012", "xml"}));
  EXPECT_TRUE(TokenizeKeywords("  ,;! ").empty());
  EXPECT_EQ(TokenizeKeywords("a"), (std::vector<std::string>{"a"}));
}

TEST(StringUtilTest, PrefixMatchCaseInsensitive) {
  EXPECT_TRUE(PrefixMatchesAsciiCaseInsensitive("Title", "ti"));
  EXPECT_TRUE(PrefixMatchesAsciiCaseInsensitive("title", "TITLE"));
  EXPECT_FALSE(PrefixMatchesAsciiCaseInsensitive("tit", "title"));
  EXPECT_TRUE(PrefixMatchesAsciiCaseInsensitive("anything", ""));
}

TEST(StringUtilTest, EditDistance) {
  EXPECT_EQ(EditDistance("", ""), 0);
  EXPECT_EQ(EditDistance("abc", "abc"), 0);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3);
  EXPECT_EQ(EditDistance("", "abc"), 3);
  EXPECT_EQ(EditDistance("author", "auhtor"), 2);  // transposition = 2 ops
}

// --------------------------------------------------------------- Logging

TEST(LoggingTest, ParseLogSeverityAcceptsNamesAndNumbers) {
  EXPECT_EQ(ParseLogSeverity("info"), LogSeverity::kInfo);
  EXPECT_EQ(ParseLogSeverity("0"), LogSeverity::kInfo);
  EXPECT_EQ(ParseLogSeverity("WARNING"), LogSeverity::kWarning);
  EXPECT_EQ(ParseLogSeverity("warn"), LogSeverity::kWarning);
  EXPECT_EQ(ParseLogSeverity("1"), LogSeverity::kWarning);
  EXPECT_EQ(ParseLogSeverity(" Error "), LogSeverity::kError);
  EXPECT_EQ(ParseLogSeverity("2"), LogSeverity::kError);
  EXPECT_EQ(ParseLogSeverity("fatal"), LogSeverity::kFatal);
  EXPECT_EQ(ParseLogSeverity("3"), LogSeverity::kFatal);
  EXPECT_EQ(ParseLogSeverity(""), std::nullopt);
  EXPECT_EQ(ParseLogSeverity("debug"), std::nullopt);
  EXPECT_EQ(ParseLogSeverity("4"), std::nullopt);
}

TEST(LoggingTest, LinePrefixHasSeverityTimestampThreadIdAndLocation) {
  std::string captured;
  LogSink previous =
      SetLogSinkForTest([&](std::string_view line) { captured += line; });
  LOTUSX_LOG(Warning) << "hello " << 42;
  SetLogSinkForTest(std::move(previous));
  ASSERT_FALSE(captured.empty());
  EXPECT_EQ(captured.front(), '[');
  EXPECT_EQ(captured.back(), '\n');
  // Exactly one line per message.
  EXPECT_EQ(std::count(captured.begin(), captured.end(), '\n'), 1);
  EXPECT_NE(captured.find("[WARN "), std::string::npos) << captured;
  EXPECT_NE(captured.find(" t"), std::string::npos) << captured;
  EXPECT_NE(captured.find("common_test.cc:"), std::string::npos) << captured;
  EXPECT_NE(captured.find("] hello 42\n"), std::string::npos) << captured;
}

TEST(LoggingTest, BelowThresholdMessagesAreSuppressed) {
  LogSeverity previous_severity = SetMinLogSeverity(LogSeverity::kError);
  std::string captured;
  LogSink previous_sink =
      SetLogSinkForTest([&](std::string_view line) { captured += line; });
  LOTUSX_LOG(Info) << "quiet";
  LOTUSX_LOG(Warning) << "also quiet";
  LOTUSX_LOG(Error) << "loud";
  SetLogSinkForTest(std::move(previous_sink));
  SetMinLogSeverity(previous_severity);
  EXPECT_EQ(captured.find("quiet"), std::string::npos) << captured;
  EXPECT_NE(captured.find("loud"), std::string::npos) << captured;
}

TEST(LoggingTest, ConcurrentMessagesNeverInterleave) {
  LogSeverity previous_severity = SetMinLogSeverity(LogSeverity::kInfo);
  // The sink runs under the global logging mutex, so no extra locking.
  std::vector<std::string> lines;
  LogSink previous_sink = SetLogSinkForTest(
      [&](std::string_view line) { lines.emplace_back(line); });
  constexpr int kThreads = 8;
  constexpr int kMessages = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kMessages; ++i) {
        LOTUSX_LOG(Info) << "thread=" << t << " message=" << i << " end";
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  SetLogSinkForTest(std::move(previous_sink));
  SetMinLogSeverity(previous_severity);
  ASSERT_EQ(lines.size(), static_cast<size_t>(kThreads) * kMessages);
  for (const std::string& line : lines) {
    // Every captured line is exactly one well-formed message.
    EXPECT_EQ(line.front(), '[');
    EXPECT_EQ(line.back(), '\n');
    EXPECT_EQ(std::count(line.begin(), line.end(), '\n'), 1) << line;
    EXPECT_NE(line.find(" end\n"), std::string::npos) << line;
  }
}

TEST(LoggingTest, InitLogSeverityFromEnvAppliesVariable) {
  LogSeverity previous = MinLogSeverity();
  ASSERT_EQ(setenv("LOTUSX_MIN_LOG_SEVERITY", "error", /*overwrite=*/1), 0);
  InitLogSeverityFromEnv();
  EXPECT_EQ(MinLogSeverity(), LogSeverity::kError);
  // Unparsable values leave the threshold alone.
  ASSERT_EQ(setenv("LOTUSX_MIN_LOG_SEVERITY", "bogus", /*overwrite=*/1), 0);
  InitLogSeverityFromEnv();
  EXPECT_EQ(MinLogSeverity(), LogSeverity::kError);
  unsetenv("LOTUSX_MIN_LOG_SEVERITY");
  SetMinLogSeverity(previous);
}

// ---------------------------------------------------------------- Random

TEST(RandomTest, DeterministicForSameSeed) {
  Random a(123);
  Random b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1);
  Random b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RandomTest, BoundedStaysInRange) {
  Random random(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(random.NextBounded(17), 17u);
    int64_t v = random.NextInRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RandomTest, DoubleInUnitInterval) {
  Random random(9);
  for (int i = 0; i < 1000; ++i) {
    double d = random.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, ZipfSkewsTowardLowRanks) {
  Random random(11);
  std::map<size_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[random.NextZipf(100, 1.0)];
  // Rank 0 must dominate rank 50 by a wide margin under skew 1.0.
  EXPECT_GT(counts[0], counts[50] * 5);
  for (const auto& [rank, count] : counts) EXPECT_LT(rank, 100u);
}

TEST(RandomTest, ZipfZeroSkewIsUniformish) {
  Random random(13);
  std::map<size_t, int> counts;
  for (int i = 0; i < 10000; ++i) ++counts[random.NextZipf(10, 0.0)];
  for (size_t rank = 0; rank < 10; ++rank) {
    EXPECT_GT(counts[rank], 700);
    EXPECT_LT(counts[rank], 1300);
  }
}

TEST(RandomTest, WordRespectsLengthBounds) {
  Random random(15);
  for (int i = 0; i < 200; ++i) {
    std::string word = random.NextWord(3, 9);
    EXPECT_GE(word.size(), 3u);
    EXPECT_LE(word.size(), 9u);
    for (char c : word) {
      EXPECT_GE(c, 'a');
      EXPECT_LE(c, 'z');
    }
  }
}

TEST(RandomTest, ShuffleKeepsElements) {
  Random random(17);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = items;
  random.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

// ---------------------------------------------------------------- Coding

TEST(CodingTest, FixedRoundTrip) {
  std::string buffer;
  Encoder encoder(&buffer);
  encoder.PutFixed32(0xDEADBEEF);
  encoder.PutFixed64(0x0123456789ABCDEFULL);
  Decoder decoder(buffer);
  uint32_t v32 = 0;
  uint64_t v64 = 0;
  ASSERT_TRUE(decoder.GetFixed32(&v32).ok());
  ASSERT_TRUE(decoder.GetFixed64(&v64).ok());
  EXPECT_EQ(v32, 0xDEADBEEF);
  EXPECT_EQ(v64, 0x0123456789ABCDEFULL);
  EXPECT_TRUE(decoder.Done());
}

TEST(CodingTest, VarintRoundTripBoundaries) {
  std::vector<uint64_t> values = {0,       1,        127,        128,
                                  16383,   16384,    UINT32_MAX, 1ull << 40,
                                  UINT64_MAX};
  std::string buffer;
  Encoder encoder(&buffer);
  for (uint64_t v : values) encoder.PutVarint64(v);
  Decoder decoder(buffer);
  for (uint64_t want : values) {
    uint64_t got = 0;
    ASSERT_TRUE(decoder.GetVarint64(&got).ok());
    EXPECT_EQ(got, want);
  }
  EXPECT_TRUE(decoder.Done());
}

TEST(CodingTest, StringRoundTrip) {
  std::string buffer;
  Encoder encoder(&buffer);
  encoder.PutString("");
  encoder.PutString("hello\0world");
  encoder.PutString(std::string(1000, 'x'));
  Decoder decoder(buffer);
  std::string s;
  ASSERT_TRUE(decoder.GetString(&s).ok());
  EXPECT_EQ(s, "");
  ASSERT_TRUE(decoder.GetString(&s).ok());
  EXPECT_EQ(s, "hello");  // string_view of literal stops at NUL
  ASSERT_TRUE(decoder.GetString(&s).ok());
  EXPECT_EQ(s, std::string(1000, 'x'));
}

TEST(CodingTest, SortedListRoundTrip) {
  std::vector<uint32_t> values = {0, 0, 3, 3, 10, 1000, 1000000};
  std::string buffer;
  Encoder encoder(&buffer);
  encoder.PutSortedU32List(values);
  Decoder decoder(buffer);
  std::vector<uint32_t> decoded;
  ASSERT_TRUE(decoder.GetSortedU32List(&decoded).ok());
  EXPECT_EQ(decoded, values);
}

TEST(CodingTest, PlainListRoundTrip) {
  std::vector<uint32_t> values = {5, 1, 0, 42, 42};
  std::string buffer;
  Encoder encoder(&buffer);
  encoder.PutU32List(values);
  Decoder decoder(buffer);
  std::vector<uint32_t> decoded;
  ASSERT_TRUE(decoder.GetU32List(&decoded).ok());
  EXPECT_EQ(decoded, values);
}

TEST(CodingTest, TruncationIsCorruption) {
  std::string buffer;
  Encoder encoder(&buffer);
  encoder.PutFixed64(1);
  Decoder decoder(std::string_view(buffer).substr(0, 3));
  uint64_t v = 0;
  EXPECT_TRUE(decoder.GetFixed64(&v).IsCorruption());
}

TEST(CodingTest, UnterminatedVarintIsCorruption) {
  std::string buffer = "\xFF\xFF";  // continuation bits set, then EOF
  Decoder decoder(buffer);
  uint64_t v = 0;
  EXPECT_TRUE(decoder.GetVarint64(&v).IsCorruption());
}

TEST(CodingTest, OverlongVarintIsCorruption) {
  std::string buffer(11, '\x80');  // >64 bits of continuation
  Decoder decoder(buffer);
  uint64_t v = 0;
  EXPECT_TRUE(decoder.GetVarint64(&v).IsCorruption());
}

TEST(CodingTest, ZigZagRoundTripsSignedBoundaries) {
  for (int32_t v : {0, 1, -1, 2, -2, 63, -64, INT32_MAX, INT32_MIN}) {
    EXPECT_EQ(ZigZagDecode32(ZigZagEncode32(v)), v);
  }
  for (int64_t v : {int64_t{0}, int64_t{-1}, int64_t{1},
                    int64_t{INT32_MAX} + 1, -(int64_t{INT32_MAX} + 1),
                    INT64_MAX, INT64_MIN}) {
    EXPECT_EQ(ZigZagDecode64(ZigZagEncode64(v)), v);
  }
  // Small magnitudes map to small codes (the property delta coding needs).
  EXPECT_EQ(ZigZagEncode32(0), 0u);
  EXPECT_EQ(ZigZagEncode32(-1), 1u);
  EXPECT_EQ(ZigZagEncode32(1), 2u);
  EXPECT_EQ(ZigZagEncode32(-2), 3u);
}

TEST(CodingTest, ZigZagVarintBlockRoundTripsRandomDeltas) {
  Random rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<int64_t> deltas;
    std::string buffer;
    Encoder encoder(&buffer);
    for (int i = 0; i < 200; ++i) {
      auto delta = static_cast<int64_t>(rng.NextUint64());
      deltas.push_back(delta);
      encoder.PutVarint64(ZigZagEncode64(delta));
    }
    Decoder decoder(buffer);
    for (int64_t expected : deltas) {
      uint64_t encoded = 0;
      ASSERT_TRUE(decoder.GetVarint64(&encoded).ok());
      EXPECT_EQ(ZigZagDecode64(encoded), expected);
    }
    EXPECT_EQ(decoder.remaining(), 0u);
  }
}

// Regression: a 10-byte varint whose final byte carries payload past bit
// 63 used to wrap silently instead of failing.
TEST(CodingTest, VarintPayloadBeyond64BitsIsCorruption) {
  std::string buffer(9, '\x80');
  buffer += '\x02';  // bit 64 set
  Decoder decoder(buffer);
  uint64_t v = 0;
  EXPECT_TRUE(decoder.GetVarint64(&v).IsCorruption());
  // ...while UINT64_MAX itself still decodes.
  std::string max(9, '\xFF');
  max += '\x01';
  Decoder max_decoder(max);
  ASSERT_TRUE(max_decoder.GetVarint64(&v).ok());
  EXPECT_EQ(v, UINT64_MAX);
}

TEST(CodingTest, StringLengthBeyondBufferIsCorruption) {
  std::string buffer;
  Encoder encoder(&buffer);
  encoder.PutVarint32(100);  // claims 100 bytes follow
  buffer += "short";
  Decoder decoder(buffer);
  std::string s;
  EXPECT_TRUE(decoder.GetString(&s).IsCorruption());
}

TEST(CodingTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/lotusx_coding_test.bin";
  std::string payload = "binary\x01\x02payload";
  ASSERT_TRUE(WriteStringToFile(path, payload).ok());
  std::string read;
  ASSERT_TRUE(ReadFileToString(path, &read).ok());
  EXPECT_EQ(read, payload);
  std::remove(path.c_str());
}

TEST(CodingTest, MissingFileIsIOError) {
  std::string contents;
  EXPECT_TRUE(
      ReadFileToString("/nonexistent/lotusx/file", &contents).IsIOError());
}

// ----------------------------------------------------------------- Arena

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena arena;
  auto a = arena.AllocateArray<uint32_t>(100);
  auto b = arena.AllocateArray<uint64_t>(50);
  ASSERT_EQ(a.size(), 100u);
  ASSERT_EQ(b.size(), 50u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a.data()) % alignof(uint32_t), 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b.data()) % alignof(uint64_t), 0u);
  // Writing one region never disturbs the other.
  for (uint32_t& v : a) v = 0xA5A5A5A5;
  for (uint64_t& v : b) v = 0x5A5A5A5A5A5A5A5A;
  for (uint32_t v : a) EXPECT_EQ(v, 0xA5A5A5A5u);
}

TEST(ArenaTest, GrowsPastTheInitialBlockAndResets) {
  Arena arena;
  // Far more than one 16KB block.
  for (int i = 0; i < 100; ++i) {
    auto span = arena.AllocateArray<uint64_t>(1000);
    span[0] = static_cast<uint64_t>(i);
    span[999] = static_cast<uint64_t>(i);
  }
  EXPECT_GE(arena.bytes_allocated(), size_t{100} * 1000 * sizeof(uint64_t));
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_allocated());
  arena.Reset();
  auto after = arena.AllocateArray<uint32_t>(10);
  EXPECT_EQ(after.size(), 10u);
}

TEST(ArenaTest, ArenaVectorGrowsLikeAVector) {
  Arena arena;
  ArenaVector<uint32_t> values(&arena);
  for (uint32_t i = 0; i < 10'000; ++i) values.push_back(i * 2);
  ASSERT_EQ(values.size(), 10'000u);
  std::span<const uint32_t> span = values.span();
  for (uint32_t i = 0; i < span.size(); ++i) EXPECT_EQ(span[i], i * 2);
}

}  // namespace
}  // namespace lotusx
