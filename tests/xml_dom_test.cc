#include <gtest/gtest.h>

#include "xml/dom.h"
#include "xml/dom_builder.h"
#include "xml/writer.h"

namespace lotusx::xml {
namespace {

constexpr std::string_view kSample = R"(<dblp>
  <article key="a1">
    <author>jiaheng lu</author>
    <title>twig joins</title>
    <year>2005</year>
  </article>
  <book key="b1">
    <author>tok wang ling</author>
    <title>xml databases</title>
  </book>
</dblp>)";

Document Parse(std::string_view xml) {
  auto result = ParseDocument(xml);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(DomTest, BuildsPreorderStructure) {
  Document doc = Parse(kSample);
  ASSERT_FALSE(doc.empty());
  EXPECT_EQ(doc.root(), 0);
  EXPECT_EQ(doc.TagName(doc.root()), "dblp");
  // dblp + 2 pubs + 2 key attrs + (3+2) child elements + 5 texts = 15.
  EXPECT_EQ(doc.num_nodes(), 15);
  EXPECT_TRUE(doc.finalized());
}

TEST(DomTest, AttributesAreAtPrefixedChildren) {
  Document doc = Parse(kSample);
  std::vector<NodeId> children = doc.Children(doc.root());
  ASSERT_EQ(children.size(), 2u);
  NodeId article = children[0];
  std::vector<NodeId> article_children = doc.Children(article);
  ASSERT_EQ(article_children.size(), 4u);  // @key, author, title, year
  EXPECT_EQ(doc.node(article_children[0]).kind, NodeKind::kAttribute);
  EXPECT_EQ(doc.TagName(article_children[0]), "@key");
  EXPECT_EQ(doc.Value(article_children[0]), "a1");
}

TEST(DomTest, DepthAndParentLinks) {
  Document doc = Parse(kSample);
  for (NodeId id = 1; id < doc.num_nodes(); ++id) {
    NodeId parent = doc.node(id).parent;
    EXPECT_GE(parent, 0);
    EXPECT_LT(parent, id);
    EXPECT_EQ(doc.node(id).depth, doc.node(parent).depth + 1);
  }
}

TEST(DomTest, SubtreeExtentsAreConsistent) {
  Document doc = Parse(kSample);
  for (NodeId id = 0; id < doc.num_nodes(); ++id) {
    NodeId end = doc.node(id).subtree_end;
    EXPECT_GE(end, id);
    // Every node in (id, end] must be a descendant; the one after must not.
    for (NodeId other = id + 1; other <= end; ++other) {
      EXPECT_TRUE(doc.IsAncestor(id, other));
    }
    if (end + 1 < doc.num_nodes()) {
      EXPECT_FALSE(doc.IsAncestor(id, end + 1));
    }
  }
}

TEST(DomTest, ContentString) {
  Document doc = Parse(kSample);
  std::vector<NodeId> children = doc.Children(doc.root());
  NodeId article = children[0];
  EXPECT_EQ(doc.ContentString(article), "");  // no direct text
  NodeId author = doc.Children(article)[1];
  EXPECT_EQ(doc.ContentString(author), "jiaheng lu");
}

TEST(DomTest, TagInterning) {
  Document doc = Parse(kSample);
  TagId author = doc.FindTag("author");
  ASSERT_NE(author, kInvalidTagId);
  EXPECT_EQ(doc.tag_name(author), "author");
  EXPECT_EQ(doc.FindTag("nonexistent"), kInvalidTagId);
  // "author" appears twice but is interned once.
  int author_tags = 0;
  for (TagId t = 0; t < doc.num_tags(); ++t) {
    if (doc.tag_name(t) == "author") ++author_tags;
  }
  EXPECT_EQ(author_tags, 1);
}

TEST(DomTest, WhitespaceTextSkippedByDefault) {
  Document doc = Parse("<a>\n  <b>x</b>\n</a>");
  // Only a, b, and the "x" text node.
  EXPECT_EQ(doc.num_nodes(), 3);
}

TEST(DomTest, WhitespaceTextKeptOnRequest) {
  DomBuilderOptions options;
  options.skip_whitespace_text = false;
  auto result = ParseDocument("<a>\n  <b>x</b>\n</a>", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_nodes(), 5);
}

TEST(DomTest, AttributesDroppedOnRequest) {
  DomBuilderOptions options;
  options.keep_attributes = false;
  auto result = ParseDocument(R"(<a k="v"><b x="y"/></a>)", options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_nodes(), 2);
}

TEST(DomTest, NamespacePrefixesKeptByDefault) {
  Document doc = Parse(
      R"(<d:dblp xmlns:d="http://dblp.org"><d:article d:key="a"/></d:dblp>)");
  EXPECT_EQ(doc.TagName(doc.root()), "d:dblp");
  EXPECT_NE(doc.FindTag("@xmlns:d"), kInvalidTagId);
  EXPECT_NE(doc.FindTag("d:article"), kInvalidTagId);
}

TEST(DomTest, NamespacePrefixStrippingForSearch) {
  DomBuilderOptions options;
  options.namespaces = NamespaceHandling::kStripPrefixes;
  auto result = ParseDocument(
      R"(<d:dblp xmlns:d="http://dblp.org" xmlns="http://x">)"
      R"(<d:article d:key="a1"><title>x</title></d:article></d:dblp>)",
      options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Document& doc = *result;
  EXPECT_EQ(doc.TagName(doc.root()), "dblp");
  EXPECT_NE(doc.FindTag("article"), kInvalidTagId);
  EXPECT_NE(doc.FindTag("@key"), kInvalidTagId);
  // xmlns declarations are dropped entirely.
  EXPECT_EQ(doc.FindTag("@xmlns:d"), kInvalidTagId);
  EXPECT_EQ(doc.FindTag("@xmlns"), kInvalidTagId);
  EXPECT_EQ(doc.FindTag("d:article"), kInvalidTagId);
}

TEST(DomTest, ParseErrorPropagates) {
  auto result = ParseDocument("<a><b></a>");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption());
}

TEST(DomDeathTest, AppendAfterFinalizeDies) {
  Document doc;
  doc.AppendElement(kInvalidNodeId, "a");
  doc.Finalize();
  EXPECT_DEATH(doc.AppendElement(0, "b"), "finalized");
}

TEST(DomDeathTest, SecondRootDies) {
  Document doc;
  doc.AppendElement(kInvalidNodeId, "a");
  EXPECT_DEATH(doc.AppendElement(kInvalidNodeId, "b"), "root");
}

// ---------------------------------------------------------------- Writer

TEST(WriterTest, RoundTripPreservesStructure) {
  Document original = Parse(kSample);
  std::string serialized = WriteXml(original);
  Document reparsed = Parse(serialized);
  ASSERT_EQ(reparsed.num_nodes(), original.num_nodes());
  for (NodeId id = 0; id < original.num_nodes(); ++id) {
    EXPECT_EQ(reparsed.node(id).kind, original.node(id).kind);
    EXPECT_EQ(reparsed.node(id).parent, original.node(id).parent);
    if (original.node(id).kind != NodeKind::kText) {
      EXPECT_EQ(reparsed.TagName(id), original.TagName(id));
    } else {
      EXPECT_EQ(reparsed.Value(id), original.Value(id));
    }
  }
}

TEST(WriterTest, EscapesSpecialCharacters) {
  Document doc = Parse("<a k=\"x&amp;y\">5 &lt; 6</a>");
  std::string serialized = WriteXml(doc);
  EXPECT_NE(serialized.find("&amp;"), std::string::npos);
  EXPECT_NE(serialized.find("&lt;"), std::string::npos);
  Document reparsed = Parse(serialized);
  EXPECT_EQ(reparsed.ContentString(reparsed.root()), "5 < 6");
}

TEST(WriterTest, SelfClosingForEmptyElements) {
  Document doc = Parse("<a><b/></a>");
  std::string serialized = WriteXml(doc, WriterOptions{.declaration = false});
  EXPECT_EQ(serialized, "<a><b/></a>");
}

TEST(WriterTest, PrettyPrintIndents) {
  Document doc = Parse("<a><b>x</b></a>");
  std::string pretty = WriteXml(doc, WriterOptions{.indent = 2});
  EXPECT_NE(pretty.find("\n  <b>"), std::string::npos) << pretty;
}

TEST(WriterTest, SubtreeSerialization) {
  Document doc = Parse(kSample);
  NodeId book = doc.Children(doc.root())[1];
  std::string serialized =
      WriteXml(doc, book, WriterOptions{.declaration = false});
  EXPECT_EQ(serialized.substr(0, 5), "<book");
  Document reparsed = Parse(serialized);
  EXPECT_EQ(reparsed.TagName(reparsed.root()), "book");
}

}  // namespace
}  // namespace lotusx::xml
