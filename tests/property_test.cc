// Property-based tests: randomized documents and queries, checked against
// reference implementations (the brute-force oracle, re-parsing, byte
// equality). Parameterized over seeds so each instance is an independent
// ctest case.

#include <gtest/gtest.h>

#include "common/random.h"
#include "datagen/datagen.h"
#include "tests/test_util.h"
#include "twig/evaluator.h"
#include "twig/query_export.h"
#include "twig/query_parser.h"
#include "twig/selectivity.h"
#include "xml/dom_builder.h"
#include "xml/writer.h"

namespace lotusx {
namespace {

using testing::BruteForceMatches;

/// Small random document: a mix of the three generators at oracle-friendly
/// sizes (the brute-force oracle is exponential in query size).
xml::Document SmallRandomDocument(uint64_t seed) {
  switch (seed % 4) {
    case 0: {
      datagen::DblpOptions options;
      options.seed = seed;
      options.num_publications = 12;
      return datagen::GenerateDblp(options);
    }
    case 1: {
      datagen::StoreOptions options;
      options.seed = seed;
      options.num_products = 10;
      return datagen::GenerateStore(options);
    }
    case 2: {
      datagen::XmarkOptions options;
      options.seed = seed;
      options.num_items = 5;
      options.num_people = 3;
      options.num_auctions = 3;
      return datagen::GenerateXmark(options);
    }
    default: {
      datagen::TreebankOptions options;
      options.seed = seed;
      options.num_sentences = 8;
      return datagen::GenerateTreebank(options);
    }
  }
}

/// Random twig query over `indexed`: grown from a random element's real
/// tag path (so most queries are satisfiable), with random axes, up to
/// two branches, occasional wildcards, value predicates drawn from real
/// document terms, and occasional order constraints.
twig::TwigQuery RandomQuery(Random& random,
                            const index::IndexedDocument& indexed) {
  const xml::Document& document = indexed.document();
  // Random element.
  xml::NodeId element;
  do {
    element = static_cast<xml::NodeId>(
        random.NextBounded(static_cast<uint64_t>(document.num_nodes())));
  } while (document.node(element).kind == xml::NodeKind::kText);
  // Its tag path.
  std::vector<std::string> tag_path;
  for (xml::NodeId walk = element; walk != xml::kInvalidNodeId;
       walk = document.node(walk).parent) {
    tag_path.emplace_back(document.TagName(walk));
  }
  std::reverse(tag_path.begin(), tag_path.end());
  // Spine = random suffix (length 1..3) of the path.
  size_t spine_len = 1 + random.NextBounded(std::min<size_t>(
                             3, tag_path.size()));
  size_t start = tag_path.size() - spine_len;

  twig::TwigQuery query;
  twig::QueryNodeId node = query.AddRoot(
      tag_path[start],
      random.NextBool(0.8) ? twig::Axis::kDescendant : twig::Axis::kChild);
  std::vector<twig::QueryNodeId> spine = {node};
  for (size_t i = start + 1; i < tag_path.size(); ++i) {
    twig::Axis axis = random.NextBool(0.6) ? twig::Axis::kChild
                                           : twig::Axis::kDescendant;
    std::string tag =
        random.NextBool(0.1) ? std::string("*") : tag_path[i];
    node = query.AddChild(node, axis, tag);
    spine.push_back(node);
  }
  // Branches: random descendant tags of a random spine node's positions.
  const index::DataGuide& guide = indexed.dataguide();
  int branches = static_cast<int>(random.NextBounded(3));
  for (int b = 0; b < branches; ++b) {
    twig::QueryNodeId anchor =
        spine[random.NextBounded(spine.size())];
    xml::TagId anchor_tag = document.FindTag(query.node(anchor).tag);
    const std::vector<index::PathId>& paths = guide.PathsWithTag(anchor_tag);
    if (paths.empty()) continue;
    index::PathId path = paths[random.NextBounded(paths.size())];
    const std::vector<xml::TagId>& descendants = guide.DescendantTags(path);
    if (descendants.empty()) continue;
    xml::TagId tag = descendants[random.NextBounded(descendants.size())];
    query.AddChild(anchor,
                   random.NextBool(0.5) ? twig::Axis::kChild
                                        : twig::Axis::kDescendant,
                   document.tag_name(tag));
  }
  // Value predicate on a random leaf, drawn from real terms half the time.
  if (random.NextBool(0.4)) {
    std::vector<twig::QueryNodeId> leaves = query.Leaves();
    twig::QueryNodeId leaf = leaves[random.NextBounded(leaves.size())];
    if (query.node(leaf).tag != "*") {
      twig::ValuePredicate predicate;
      predicate.op = random.NextBool(0.5)
                         ? twig::ValuePredicate::Op::kContains
                         : twig::ValuePredicate::Op::kEquals;
      xml::TagId tag = document.FindTag(query.node(leaf).tag);
      const index::Trie* trie = indexed.terms().term_trie_for_tag(tag);
      if (trie != nullptr && random.NextBool(0.7)) {
        auto terms = trie->Complete("", 5);
        predicate.text = terms[random.NextBounded(terms.size())].key;
      } else {
        predicate.text = random.NextWord(2, 6);
      }
      query.SetPredicate(leaf, predicate);
    }
  }
  // Order constraint occasionally.
  if (random.NextBool(0.25)) {
    for (twig::QueryNodeId q = 0; q < query.size(); ++q) {
      if (query.node(q).children.size() >= 2) {
        query.SetOrdered(q, true);
        break;
      }
    }
  }
  // Random output node.
  query.SetOutput(static_cast<twig::QueryNodeId>(
      random.NextBounded(static_cast<uint64_t>(query.size()))));
  return query;
}

std::string QueryDebug(const twig::TwigQuery& query) {
  std::string out;
  for (twig::QueryNodeId q = 0; q < query.size(); ++q) {
    const twig::QueryNode& node = query.node(q);
    out += std::to_string(q) + ":" + node.tag + " p=" +
           std::to_string(node.parent) +
           (node.incoming_axis == twig::Axis::kChild ? " /" : " //") +
           " out=" + std::to_string(node.is_output) +
           " ord=" + std::to_string(node.ordered) + " pred=" +
           std::to_string(static_cast<int>(node.predicate.op)) + ":" +
           node.predicate.text + "; ";
  }
  return out;
}

class RandomizedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomizedSweep, AllAlgorithmsMatchOracle) {
  uint64_t seed = GetParam();
  Random random(seed * 7919 + 13);
  index::IndexedDocument indexed(SmallRandomDocument(seed));
  for (int i = 0; i < 25; ++i) {
    twig::TwigQuery query = RandomQuery(random, indexed);
    ASSERT_TRUE(query.Validate().ok()) << query.ToString();
    std::vector<twig::Match> expected = BruteForceMatches(indexed, query);
    for (twig::Algorithm algorithm :
         {twig::Algorithm::kStructuralJoin, twig::Algorithm::kTwigStack,
          twig::Algorithm::kTJFast, twig::Algorithm::kAuto}) {
      twig::EvalOptions options;
      options.algorithm = algorithm;
      auto result = twig::Evaluate(indexed, query, options);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ASSERT_EQ(result->matches, expected)
          << "query " << query.ToString() << " algorithm "
          << AlgorithmName(algorithm) << " seed " << seed << " i=" << i;
    }
    if (query.IsPath()) {
      twig::EvalOptions options;
      options.algorithm = twig::Algorithm::kPathStack;
      auto result = twig::Evaluate(indexed, query, options);
      ASSERT_TRUE(result.ok());
      ASSERT_EQ(result->matches, expected) << query.ToString();
    }
    // Schema-based stream pruning must never change answers (schema
    // matching is complete: every real match binds to feasible paths).
    {
      twig::EvalOptions options;
      options.schema_prune_streams = true;
      auto result = twig::Evaluate(indexed, query, options);
      ASSERT_TRUE(result.ok());
      ASSERT_EQ(result->matches, expected)
          << "schema pruning changed answers for " << query.ToString();
    }
    // Neither may selectivity-based join reordering.
    {
      twig::EvalOptions options;
      options.algorithm = twig::Algorithm::kStructuralJoin;
      options.reorder_binary_joins = true;
      auto result = twig::Evaluate(indexed, query, options);
      ASSERT_TRUE(result.ok());
      ASSERT_EQ(result->matches, expected)
          << "join reordering changed answers for " << query.ToString();
    }
  }
}

TEST_P(RandomizedSweep, QueryToStringRoundTrips) {
  uint64_t seed = GetParam();
  Random random(seed * 104729 + 1);
  index::IndexedDocument indexed(SmallRandomDocument(seed));
  for (int i = 0; i < 40; ++i) {
    twig::TwigQuery query = RandomQuery(random, indexed);
    std::string rendered = query.ToString();
    auto reparsed = twig::ParseQuery(rendered);
    ASSERT_TRUE(reparsed.ok())
        << rendered << " -> " << reparsed.status().ToString();
    // Node ids may be renumbered (the parser builds branches depth-first,
    // RandomQuery builds the spine first), so equality is checked on the
    // canonical form and on semantics, not on the numbering.
    EXPECT_EQ(reparsed->ToString(), rendered)
        << "\noriginal: " << QueryDebug(query)
        << "\nreparsed: " << QueryDebug(*reparsed);
    auto a = twig::Evaluate(indexed, query);
    auto b = twig::Evaluate(indexed, *reparsed);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    std::vector<xml::NodeId> a_out = a->OutputNodes(query.output());
    std::vector<xml::NodeId> b_out = b->OutputNodes(reparsed->output());
    EXPECT_EQ(a_out, b_out) << rendered;
  }
}

TEST_P(RandomizedSweep, XPathExportPreservesOutputSemantics) {
  // Structural-only check: exporting and re-importing through our own
  // parser is impossible (XPath != twig syntax), but the export must at
  // least be non-empty and mention every tag of the query.
  uint64_t seed = GetParam();
  Random random(seed * 31 + 7);
  index::IndexedDocument indexed(SmallRandomDocument(seed));
  for (int i = 0; i < 20; ++i) {
    twig::TwigQuery query = RandomQuery(random, indexed);
    if (query.HasOrderConstraints()) continue;
    auto xpath = twig::ToXPath(query);
    ASSERT_TRUE(xpath.ok()) << query.ToString();
    for (twig::QueryNodeId q = 0; q < query.size(); ++q) {
      EXPECT_NE(xpath->find(query.node(q).tag), std::string::npos)
          << *xpath << " missing " << query.node(q).tag;
    }
    auto xquery = twig::ToXQuery(query);
    ASSERT_TRUE(xquery.ok());
    EXPECT_NE(xquery->find("return $n" + std::to_string(query.output())),
              std::string::npos);
  }
}

TEST_P(RandomizedSweep, WriterParserRoundTripIsFixpoint) {
  uint64_t seed = GetParam();
  xml::Document document = SmallRandomDocument(seed);
  std::string once = xml::WriteXml(document);
  auto reparsed = xml::ParseDocument(once);
  ASSERT_TRUE(reparsed.ok());
  std::string twice = xml::WriteXml(*reparsed);
  EXPECT_EQ(once, twice);
}

TEST_P(RandomizedSweep, PersistenceRoundTripPreservesQueries) {
  uint64_t seed = GetParam();
  Random random(seed + 5);
  index::IndexedDocument indexed(SmallRandomDocument(seed));
  std::string path = ::testing::TempDir() + "/lotusx_prop_" +
                     std::to_string(seed) + ".ltsx";
  ASSERT_TRUE(indexed.SaveTo(path).ok());
  auto loaded = index::IndexedDocument::LoadFrom(path);
  ASSERT_TRUE(loaded.ok());
  for (int i = 0; i < 10; ++i) {
    twig::TwigQuery query = RandomQuery(random, indexed);
    auto a = twig::Evaluate(indexed, query);
    auto b = twig::Evaluate(*loaded, query);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->matches, b->matches) << query.ToString();
  }
  std::remove(path.c_str());
}

TEST_P(RandomizedSweep, SelectivityNodeEstimatesAreSoundWithoutPredicates) {
  // Without value predicates, the schema-level node cardinality is exact:
  // it must equal the number of nodes at the feasible paths, an upper
  // bound on actual bindings.
  uint64_t seed = GetParam();
  Random random(seed * 3 + 1);
  index::IndexedDocument indexed(SmallRandomDocument(seed));
  for (int i = 0; i < 15; ++i) {
    twig::TwigQuery query = RandomQuery(random, indexed);
    bool has_predicate = false;
    for (twig::QueryNodeId q = 0; q < query.size(); ++q) {
      has_predicate |= query.node(q).predicate.active();
    }
    if (has_predicate) continue;
    twig::SelectivityEstimate estimate =
        twig::EstimateSelectivity(indexed, query);
    auto result = twig::Evaluate(indexed, query);
    ASSERT_TRUE(result.ok());
    for (twig::QueryNodeId q = 0; q < query.size(); ++q) {
      std::set<xml::NodeId> distinct;
      for (const twig::Match& match : result->matches) {
        distinct.insert(match.bindings[static_cast<size_t>(q)]);
      }
      EXPECT_GE(estimate.node_cardinality[static_cast<size_t>(q)] + 1e-9,
                static_cast<double>(distinct.size()))
          << query.ToString() << " node " << q;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedSweep,
                         ::testing::Range<uint64_t>(0, 12));

}  // namespace
}  // namespace lotusx
