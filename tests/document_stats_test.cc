#include <gtest/gtest.h>

#include "index/document_stats.h"
#include "session/protocol.h"
#include "session/session.h"
#include "tests/test_util.h"

namespace lotusx::index {
namespace {

using lotusx::testing::MustIndex;

constexpr std::string_view kXml = R"(<dblp>
  <article key="a1">
    <author>lu</author>
    <title>twig search twig</title>
  </article>
  <book>
    <author>ling</author>
  </book>
</dblp>)";

TEST(DocumentStatsTest, CountsNodeKinds) {
  auto indexed = MustIndex(kXml);
  DocumentStats stats = ComputeDocumentStats(indexed);
  // dblp, article, author, title, book, author = 6 elements.
  EXPECT_EQ(stats.elements, 6);
  EXPECT_EQ(stats.attributes, 1);
  EXPECT_EQ(stats.text_nodes, 3);
  EXPECT_EQ(stats.distinct_tags, indexed.document().num_tags());
  EXPECT_EQ(stats.distinct_paths, indexed.dataguide().num_paths());
}

TEST(DocumentStatsTest, DepthStatistics) {
  auto indexed = MustIndex(kXml);
  DocumentStats stats = ComputeDocumentStats(indexed);
  EXPECT_EQ(stats.max_depth, 3);  // text under author/title
  ASSERT_GE(stats.depth_histogram.size(), 3u);
  EXPECT_EQ(stats.depth_histogram[0], 1);  // dblp
  EXPECT_EQ(stats.depth_histogram[1], 2);  // article, book
  EXPECT_EQ(stats.depth_histogram[2], 3);  // author, title, author
  EXPECT_GT(stats.avg_depth, 0);
  EXPECT_LT(stats.avg_depth, stats.max_depth);
}

TEST(DocumentStatsTest, TopTagsAndTerms) {
  auto indexed = MustIndex(kXml);
  DocumentStats stats = ComputeDocumentStats(indexed, /*top_k=*/3);
  ASSERT_FALSE(stats.top_tags.empty());
  EXPECT_EQ(stats.top_tags[0].first, "author");
  EXPECT_EQ(stats.top_tags[0].second, 2u);
  ASSERT_FALSE(stats.top_terms.empty());
  EXPECT_EQ(stats.top_terms[0].first, "twig");
  EXPECT_EQ(stats.top_terms[0].second, 2u);
  EXPECT_LE(stats.top_tags.size(), 3u);
}

TEST(DocumentStatsTest, RenderMentionsEverything) {
  auto indexed = MustIndex(kXml);
  std::string rendered =
      RenderDocumentStats(ComputeDocumentStats(indexed));
  EXPECT_NE(rendered.find("elements: 6"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("top tags:"), std::string::npos);
  EXPECT_NE(rendered.find("author(2)"), std::string::npos);
}

TEST(DocumentStatsTest, ProtocolStatsCommand) {
  auto indexed = MustIndex(kXml);
  session::Session session(indexed);
  session::ProtocolInterpreter interpreter(&session);
  // Document statistics moved to STATS DOC; bare STATS now dumps the
  // process-wide metrics registry (see session_test.cc).
  auto response = interpreter.Execute("STATS DOC");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_NE(response->find("distinct paths"), std::string::npos);
}

}  // namespace
}  // namespace lotusx::index
