// Full-stack integration scenarios: each test walks an entire user
// journey through the public API — generate, serialize, parse, index,
// persist, reload, discover, draw, complete, run, rank, rewrite, export —
// asserting consistency at every hand-off point.

#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "keyword/keyword_search.h"
#include "lotusx/collection.h"
#include "lotusx/engine.h"
#include "session/canvas_io.h"
#include "session/protocol.h"
#include "session/svg_export.h"
#include "twig/query_export.h"
#include "twig/query_from_example.h"
#include "twig/query_parser.h"
#include "twig/selectivity.h"
#include "xml/dom_builder.h"
#include "xml/writer.h"

namespace lotusx {
namespace {

TEST(IntegrationTest, GenerateIndexPersistQueryLifecycle) {
  // 1. Generate a corpus and write it as XML text.
  datagen::DblpOptions corpus;
  corpus.num_publications = 300;
  corpus.seed = 77;
  std::string xml = xml::WriteXml(datagen::GenerateDblp(corpus));

  // 2. Engine from text.
  auto engine = Engine::FromXmlText(xml);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  // 3. Query, rank; remember the top answer.
  auto first = engine->Search("//article[author][year]/title");
  ASSERT_TRUE(first.ok());
  ASSERT_FALSE(first->results.empty());
  xml::NodeId top = first->results[0].output;

  // 4. Persist the index, reload a second engine from the image.
  std::string path = ::testing::TempDir() + "/lotusx_integration.ltsx";
  ASSERT_TRUE(engine->SaveIndex(path).ok());
  auto reloaded = Engine::FromIndexFile(path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  std::remove(path.c_str());

  // 5. The reloaded engine gives identical answers and scores.
  auto second = reloaded->Search("//article[author][year]/title");
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second->results.size(), first->results.size());
  EXPECT_EQ(second->results[0].output, top);
  EXPECT_DOUBLE_EQ(second->results[0].score, first->results[0].score);

  // 6. Materialized results re-parse with our own parser.
  std::string materialized = engine->MaterializeResults(*first, 5);
  auto parsed = xml::ParseDocument(materialized);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << materialized;
  EXPECT_EQ(parsed->TagName(parsed->root()), "results");
  int rendered = 0;
  for (xml::NodeId id : parsed->Children(parsed->root())) {
    if (parsed->node(id).kind == xml::NodeKind::kElement) ++rendered;
  }
  EXPECT_EQ(rendered, 5);
}

TEST(IntegrationTest, DiscoverExampleRefineRunJourney) {
  // The full LotusX loop: keywords -> example -> canvas -> completion ->
  // refined query -> ranked answers.
  datagen::StoreOptions corpus;
  corpus.num_products = 400;
  corpus.seed = 21;
  index::IndexedDocument indexed(datagen::GenerateStore(corpus));

  // 1. Schema-free discovery: what connects a brand term and a rating?
  auto brand_terms = indexed.terms().term_trie_for_tag(
      indexed.document().FindTag("brand"));
  ASSERT_NE(brand_terms, nullptr);
  std::string brand = brand_terms->Complete("", 1)[0].key;
  auto hits = keyword::SlcaSearch(indexed, brand + " 5");
  ASSERT_TRUE(hits.ok());
  ASSERT_FALSE(hits->empty());

  // 2. Turn the best hit into a query.
  auto example = twig::QueryFromExample(indexed, (*hits)[0].node);
  ASSERT_TRUE(example.ok()) << example.status().ToString();

  // 3. Load it onto a session canvas and refine via the protocol.
  session::Session session(indexed);
  session::ProtocolInterpreter interpreter(&session);
  session.canvas() = session::CanvasFromQuery(*example);
  auto shown = interpreter.Execute("SHOW");
  ASSERT_TRUE(shown.ok());

  // 4. Position-aware completion on the canvas root must only offer tags
  //    satisfiable there.
  session::CanvasNodeId root_box = session.canvas().nodes()[0].id;
  auto candidates =
      session.SuggestTags(root_box, twig::Axis::kChild, "");
  ASSERT_TRUE(candidates.ok());
  autocomplete::CompletionEngine completion(indexed);
  auto compiled = session.canvas().Compile();
  ASSERT_TRUE(compiled.ok());
  for (const autocomplete::Candidate& candidate : *candidates) {
    EXPECT_TRUE(completion.ExtensionIsSatisfiable(
        *compiled, 0, twig::Axis::kChild, candidate.text))
        << candidate.text;
  }

  // 5. Run, ranked.
  auto response = session.Run();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_FALSE(response->results.empty());

  // 6. Export the drawing and the query.
  std::string svg = session::RenderCanvasSvg(session.canvas());
  EXPECT_TRUE(xml::ParseDocument(svg).ok());
  auto xquery = session.CanvasToXQuery();
  ASSERT_TRUE(xquery.ok());
  EXPECT_NE(xquery->find("return $n"), std::string::npos);
}

TEST(IntegrationTest, RewritePipelineRepairsScriptedMistakes) {
  datagen::DblpOptions corpus;
  corpus.num_publications = 200;
  index::IndexedDocument indexed(datagen::GenerateDblp(corpus));
  session::Session session(indexed);
  session::ProtocolInterpreter interpreter(&session);
  auto run = [&](std::string_view line) {
    auto response = interpreter.Execute(line);
    EXPECT_TRUE(response.ok()) << line << ": "
                               << response.status().ToString();
    return response.ok() ? *response : "";
  };
  run("ADD 0 0 article");
  run("ADD 0 100 titel");  // typo
  run("EDGE 1 2 /");
  std::string result = run("RUN");
  EXPECT_NE(result.find("rewritten"), std::string::npos) << result;
  EXPECT_NE(result.find("respell"), std::string::npos) << result;
  // History records the REPAIRED query (the one that executed).
  std::string history = run("HISTORY");
  EXPECT_NE(history.find("title"), std::string::npos) << history;
}

TEST(IntegrationTest, CollectionOfPersistedIndexes) {
  // Save two corpora as index images, load them into a collection, and
  // search across both.
  std::string dblp_path = ::testing::TempDir() + "/lotusx_int_dblp.ltsx";
  std::string store_path = ::testing::TempDir() + "/lotusx_int_store.ltsx";
  {
    datagen::DblpOptions options;
    options.num_publications = 120;
    index::IndexedDocument indexed(datagen::GenerateDblp(options));
    ASSERT_TRUE(indexed.SaveTo(dblp_path).ok());
  }
  {
    datagen::StoreOptions options;
    options.num_products = 120;
    index::IndexedDocument indexed(datagen::GenerateStore(options));
    ASSERT_TRUE(indexed.SaveTo(store_path).ok());
  }
  Collection collection;
  ASSERT_TRUE(collection.AddIndexFile("dblp", dblp_path).ok());
  ASSERT_TRUE(collection.AddIndexFile("store", store_path).ok());
  std::remove(dblp_path.c_str());
  std::remove(store_path.c_str());

  auto result = collection.Search("//title", /*top_k=*/10);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->hits.size(), 10u);
  auto store_only = collection.Search("//product/price", /*top_k=*/5);
  ASSERT_TRUE(store_only.ok());
  for (const CollectionHit& hit : store_only->hits) {
    EXPECT_EQ(hit.document_name, "store");
  }
}

TEST(IntegrationTest, ExplainAgreesWithExecution) {
  datagen::XmarkOptions corpus;
  corpus.num_items = 100;
  index::IndexedDocument indexed(datagen::GenerateXmark(corpus));
  for (std::string_view text :
       {"//item[payment]/name", "//person/name", "//listitem//text"}) {
    twig::TwigQuery query = twig::ParseQuery(text).value();
    twig::SelectivityEstimate estimate =
        twig::EstimateSelectivity(indexed, query);
    auto result = twig::Evaluate(indexed, query);
    ASSERT_TRUE(result.ok());
    // The algorithm named by Explain is the one kAuto actually ran.
    auto report = twig::Explain(indexed, query);
    ASSERT_TRUE(report.ok());
    EXPECT_NE(report->find("algorithm: " + result->stats.algorithm),
              std::string::npos)
        << *report;
    // Structure-only estimates stay within 3x of the truth here.
    double actual = static_cast<double>(result->matches.size());
    EXPECT_LE(estimate.match_cardinality, actual * 3 + 5) << text;
    EXPECT_GE(estimate.match_cardinality, actual / 3 - 5) << text;
  }
}

}  // namespace
}  // namespace lotusx
