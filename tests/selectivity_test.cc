#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "tests/test_util.h"
#include "twig/evaluator.h"
#include "twig/query_parser.h"
#include "twig/schema_match.h"
#include "twig/selectivity.h"

namespace lotusx::twig {
namespace {

using lotusx::testing::MustIndex;

TwigQuery Q(std::string_view text) {
  auto result = ParseQuery(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

constexpr std::string_view kXml = R"(<dblp>
  <article><author>a one</author><title>t xml</title><year>2010</year></article>
  <article><author>a two</author><title>t data</title><year>2011</year></article>
  <article><author>a three</author><title>t xml</title><year>2012</year></article>
  <book><author>b one</author><title>t books</title></book>
</dblp>)";

// ------------------------------------------------------------ SchemaMatch

TEST(SchemaMatchTest, FreeFunctionMatchesCompletionEngine) {
  auto indexed = MustIndex(kXml);
  TwigQuery query = Q("//article[author]/title");
  auto bindings = SchemaBindings(indexed, query);
  ASSERT_EQ(bindings.size(), 3u);
  EXPECT_EQ(bindings[0].size(), 1u);  // article path
  EXPECT_EQ(bindings[1].size(), 1u);  // article/author
  EXPECT_EQ(bindings[2].size(), 1u);  // article/title
}

// ------------------------------------------------------------- Estimates

TEST(SelectivityTest, ExactForSingleNodes) {
  auto indexed = MustIndex(kXml);
  SelectivityEstimate estimate =
      EstimateSelectivity(indexed, Q("//article"));
  EXPECT_DOUBLE_EQ(estimate.node_cardinality[0], 3.0);
  EXPECT_DOUBLE_EQ(estimate.match_cardinality, 3.0);
  estimate = EstimateSelectivity(indexed, Q("//author"));
  EXPECT_DOUBLE_EQ(estimate.node_cardinality[0], 4.0);
}

TEST(SelectivityTest, SchemaFilteringNarrowsNodeCardinality) {
  auto indexed = MustIndex(kXml);
  // author under book: only the single book author counts.
  SelectivityEstimate estimate =
      EstimateSelectivity(indexed, Q("//book/author"));
  EXPECT_DOUBLE_EQ(estimate.node_cardinality[1], 1.0);
  EXPECT_DOUBLE_EQ(estimate.match_cardinality, 1.0);
}

TEST(SelectivityTest, UnsatisfiableQueryEstimatesZero) {
  auto indexed = MustIndex(kXml);
  SelectivityEstimate estimate =
      EstimateSelectivity(indexed, Q("//book/year"));
  EXPECT_DOUBLE_EQ(estimate.match_cardinality, 0.0);
}

TEST(SelectivityTest, PredicateScalesEstimate) {
  auto indexed = MustIndex(kXml);
  SelectivityEstimate plain =
      EstimateSelectivity(indexed, Q("//title"));
  SelectivityEstimate filtered =
      EstimateSelectivity(indexed, Q(R"(//title[~"xml"])"));
  EXPECT_LT(filtered.node_cardinality[0], plain.node_cardinality[0]);
  EXPECT_GT(filtered.node_cardinality[0], 0.0);
}

TEST(SelectivityTest, StreamSizesSeparateLeavesFromInternals) {
  auto indexed = MustIndex(kXml);
  SelectivityEstimate estimate =
      EstimateSelectivity(indexed, Q("//article[author]/title"));
  // total = article(3) + author(4) + title(4); leaves = author + title.
  EXPECT_DOUBLE_EQ(estimate.total_stream_size, 11.0);
  EXPECT_DOUBLE_EQ(estimate.leaf_stream_size, 8.0);
}

TEST(SelectivityTest, EstimateTracksActualOnGeneratedCorpus) {
  datagen::DblpOptions options;
  options.num_publications = 500;
  index::IndexedDocument indexed(datagen::GenerateDblp(options));
  for (std::string_view text :
       {"//article/title", "//article[author]/year",
        "//inproceedings/booktitle", "//dblp/*[author]/title",
        "//book[isbn]/publisher"}) {
    TwigQuery query = Q(text);
    SelectivityEstimate estimate = EstimateSelectivity(indexed, query);
    auto actual = Evaluate(indexed, query);
    ASSERT_TRUE(actual.ok());
    double real = static_cast<double>(actual->matches.size());
    // Within a factor of 3 (the estimator is schema-exact for structure;
    // only branch correlation brings error).
    EXPECT_LE(estimate.match_cardinality, real * 3 + 5) << text;
    EXPECT_GE(estimate.match_cardinality, real / 3 - 5) << text;
  }
}

// -------------------------------------------------------- ChooseAlgorithm

TEST(ChooseAlgorithmTest, PathsUsePathStack) {
  auto indexed = MustIndex(kXml);
  EXPECT_EQ(ChooseAlgorithm(indexed, Q("//article/title")),
            Algorithm::kPathStack);
}

TEST(ChooseAlgorithmTest, HugeInternalStreamsPickTjFast) {
  std::string xml = "<r>";
  for (int i = 0; i < 40; ++i) {
    xml += "<a><a><a>";
    if (i % 8 == 0) xml += "<b/><c/>";
    xml += "</a></a></a>";
  }
  xml += "</r>";
  auto indexed = MustIndex(xml);
  EXPECT_EQ(ChooseAlgorithm(indexed, Q("//a[b]/c")), Algorithm::kTJFast);
}

TEST(ChooseAlgorithmTest, LeafHeavyTwigsPickTwigStack) {
  auto indexed = MustIndex(kXml);
  // article(3) internal; author(4)+title(4) leaves = 73% of streams.
  EXPECT_EQ(ChooseAlgorithm(indexed, Q("//article[author]/title")),
            Algorithm::kTwigStack);
}

// ----------------------------------------------------------------- Explain

TEST(ExplainTest, ReportsPositionsEstimateAndAlgorithm) {
  auto indexed = MustIndex(kXml);
  auto report = Explain(indexed, Q("//article[author]/title"));
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->find("/dblp/article"), std::string::npos) << *report;
  EXPECT_NE(report->find("estimated matches"), std::string::npos);
  EXPECT_NE(report->find("algorithm:"), std::string::npos);
}

TEST(ExplainTest, RejectsInvalidQuery) {
  auto indexed = MustIndex(kXml);
  TwigQuery empty;
  EXPECT_FALSE(Explain(indexed, empty).ok());
}

}  // namespace
}  // namespace lotusx::twig
