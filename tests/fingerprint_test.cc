// Pins the statement-fingerprint semantics (twig/fingerprint.h): two
// queries share a fingerprint exactly when they share structure, tags,
// axes, order constraints, output node, predicate operators, and
// evaluation options. Value-predicate *texts* are the one thing
// normalized out — //book[title="XML"] and //book[title="SQL"] must
// collapse to a single statement — and the mutation sweep below walks
// every other dimension asserting it diverges the fingerprint.

#include "twig/fingerprint.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "twig/evaluator.h"
#include "twig/twig_query.h"

namespace lotusx::twig {
namespace {

/// //book[title="XML"]//author! — the base shape every mutation starts
/// from: two levels, one predicate, non-root output node.
TwigQuery BaseQuery(std::string_view literal = "XML") {
  TwigQuery query;
  QueryNodeId book = query.AddRoot("book");
  QueryNodeId title = query.AddChild(book, Axis::kChild, "title");
  query.SetPredicate(title,
                     {ValuePredicate::Op::kEquals, std::string(literal)});
  QueryNodeId author = query.AddChild(book, Axis::kDescendant, "author");
  query.SetOutput(author);
  return query;
}

TEST(FingerprintTest, DeterministicAcrossCalls) {
  const QueryFingerprint a = FingerprintQuery(BaseQuery());
  const QueryFingerprint b = FingerprintQuery(BaseQuery());
  EXPECT_EQ(a.value, b.value);
  EXPECT_NE(a.value, 0u) << "0 is the no-fingerprint sentinel";
}

TEST(FingerprintTest, LiteralOnlyChangesCollapseToOneShape) {
  const QueryFingerprint xml = FingerprintQuery(BaseQuery("XML"));
  const QueryFingerprint sql = FingerprintQuery(BaseQuery("SQL"));
  const QueryFingerprint empty = FingerprintQuery(BaseQuery(""));
  EXPECT_EQ(xml.value, sql.value);
  EXPECT_EQ(xml.value, empty.value);
  // ... while the literals ride along for reconstruction.
  ASSERT_EQ(xml.literals.size(), 1u);
  EXPECT_EQ(xml.literals[0], "XML");
  EXPECT_EQ(sql.literals[0], "SQL");
}

TEST(FingerprintTest, MutationSweepDivergesEveryStructuralDimension) {
  const uint64_t base = FingerprintQuery(BaseQuery()).value;
  std::vector<std::pair<std::string, TwigQuery>> mutants;

  {  // different tag on an inner node
    TwigQuery q = BaseQuery();
    q.SetTag(1, "subtitle");
    mutants.emplace_back("tag", q);
  }
  {  // child vs descendant on an edge
    TwigQuery q = BaseQuery();
    q.SetIncomingAxis(1, Axis::kDescendant);
    mutants.emplace_back("axis", q);
  }
  {  // the document-root axis (//book vs /book)
    TwigQuery q = BaseQuery();
    q.set_root_axis(Axis::kChild);
    mutants.emplace_back("root-axis", q);
  }
  {  // one more node
    TwigQuery q = BaseQuery();
    q.AddChild(0, Axis::kChild, "year");
    mutants.emplace_back("extra-node", q);
  }
  {  // order constraint
    TwigQuery q = BaseQuery();
    q.SetOrdered(0, true);
    mutants.emplace_back("ordered", q);
  }
  {  // different output node
    TwigQuery q = BaseQuery();
    q.SetOutput(1);
    mutants.emplace_back("output", q);
  }
  {  // predicate operator (the text stays excluded, the op does not)
    TwigQuery q = BaseQuery();
    q.SetPredicate(1, {ValuePredicate::Op::kContains, "XML"});
    mutants.emplace_back("predicate-op", q);
  }
  {  // predicate dropped entirely
    TwigQuery q = BaseQuery();
    q.SetPredicate(1, {});
    mutants.emplace_back("predicate-removed", q);
  }

  std::set<uint64_t> seen = {base};
  for (const auto& [name, query] : mutants) {
    const uint64_t mutated = FingerprintQuery(query).value;
    EXPECT_NE(mutated, base) << "mutation '" << name
                             << "' should change the fingerprint";
    EXPECT_TRUE(seen.insert(mutated).second)
        << "mutation '" << name << "' collided with an earlier mutant";
  }
}

TEST(FingerprintTest, EveryEvalOptionFieldFeedsTheFingerprint) {
  // sizeof tripwire: if EvalOptions grows, fingerprint.cc's
  // static_assert fires at build time and this sweep must learn the new
  // field. Keep the two in lockstep.
  static_assert(sizeof(EvalOptions) == 8,
                "EvalOptions changed: add the new field to this sweep and "
                "to FingerprintQuery");
  const TwigQuery query = BaseQuery();
  const uint64_t base = FingerprintQuery(query, EvalOptions{}).value;

  std::vector<std::pair<std::string, EvalOptions>> variants;
  {
    EvalOptions o;
    o.algorithm = Algorithm::kTwigStack;
    variants.emplace_back("algorithm", o);
  }
  {
    EvalOptions o;
    o.apply_order = false;
    variants.emplace_back("apply_order", o);
  }
  {
    EvalOptions o;
    o.integrate_order = false;
    variants.emplace_back("integrate_order", o);
  }
  {
    EvalOptions o;
    o.reorder_binary_joins = true;
    variants.emplace_back("reorder_binary_joins", o);
  }
  {
    EvalOptions o;
    o.schema_prune_streams = true;
    variants.emplace_back("schema_prune_streams", o);
  }

  std::set<uint64_t> seen = {base};
  for (const auto& [name, options] : variants) {
    const uint64_t varied = FingerprintQuery(query, options).value;
    EXPECT_NE(varied, base) << "option '" << name << "' must diverge";
    EXPECT_TRUE(seen.insert(varied).second)
        << "option '" << name << "' collided with an earlier variant";
  }
}

TEST(FingerprintTest, FormatParseRoundTrip) {
  const uint64_t value = FingerprintQuery(BaseQuery()).value;
  const std::string text = FormatFingerprint(value);
  EXPECT_EQ(text.substr(0, 2), "0x");
  EXPECT_EQ(text.size(), 18u);  // 0x + 16 hex digits
  EXPECT_EQ(ParseFingerprint(text), value);
  // Bare hex (no prefix) is accepted too; garbage is the 0 sentinel.
  EXPECT_EQ(ParseFingerprint(text.substr(2)), value);
  EXPECT_EQ(ParseFingerprint(""), 0u);
  EXPECT_EQ(ParseFingerprint("0x"), 0u);
  EXPECT_EQ(ParseFingerprint("not-hex"), 0u);
  EXPECT_EQ(ParseFingerprint("0x12345q"), 0u);
}

TEST(FingerprintTest, NormalizedTextReplacesLiteralsOnly) {
  const std::string normalized = NormalizedQueryText(BaseQuery("XML"));
  EXPECT_EQ(normalized, NormalizedQueryText(BaseQuery("SQL")))
      << "normalized text is per-shape, not per-literal";
  EXPECT_EQ(normalized.find("XML"), std::string::npos) << normalized;
  EXPECT_NE(normalized.find('?'), std::string::npos) << normalized;
  // Structure survives: tags and the output marker still render.
  EXPECT_NE(normalized.find("book"), std::string::npos) << normalized;
  EXPECT_NE(normalized.find("author"), std::string::npos) << normalized;
}

}  // namespace
}  // namespace lotusx::twig
