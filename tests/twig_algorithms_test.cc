#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "tests/test_util.h"
#include "twig/evaluator.h"
#include "twig/query_parser.h"

namespace lotusx::twig {
namespace {

using lotusx::testing::BruteForceMatches;
using lotusx::testing::MustIndex;

constexpr std::string_view kBibXml = R"(<dblp>
  <article key="a1">
    <author>jiaheng lu</author>
    <author>chunbin lin</author>
    <title>twig pattern matching</title>
    <year>2005</year>
  </article>
  <article key="a2">
    <author>chunbin lin</author>
    <title>lotusx graphical search</title>
    <year>2012</year>
  </article>
  <book key="b1">
    <author>tok wang ling</author>
    <title>xml databases</title>
    <year>2012</year>
    <chapter><title>twig basics</title><section><title>stacks</title>
    </section></chapter>
  </book>
</dblp>)";

// Nested/recursive structure that stresses AD semantics.
constexpr std::string_view kNestedXml = R"(<r>
  <s><s><t>one</t></s><t>two</t></s>
  <s><u><s><t>three</t><u/></s></u></s>
  <t>four</t>
</r>)";

TwigQuery Q(std::string_view text) {
  auto result = ParseQuery(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

class AlgorithmTest : public ::testing::TestWithParam<Algorithm> {
 protected:
  /// Evaluates with the parameterized algorithm and checks the result set
  /// equals the brute-force oracle.
  void CheckAgainstOracle(const index::IndexedDocument& indexed,
                          std::string_view query_text) {
    TwigQuery query = Q(query_text);
    if (GetParam() == Algorithm::kPathStack && !query.IsPath()) {
      GTEST_SKIP() << "PathStack only handles paths";
    }
    EvalOptions options;
    options.algorithm = GetParam();
    auto result = Evaluate(indexed, query, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    std::vector<Match> expected = BruteForceMatches(indexed, query);
    EXPECT_EQ(result->matches, expected)
        << "algorithm=" << AlgorithmName(GetParam()) << " query="
        << query_text << " got=" << result->matches.size()
        << " want=" << expected.size();
  }
};

TEST_P(AlgorithmTest, SingleNodeQuery) {
  auto indexed = MustIndex(kBibXml);
  CheckAgainstOracle(indexed, "//author");
  CheckAgainstOracle(indexed, "//title");
  CheckAgainstOracle(indexed, "//dblp");
}

TEST_P(AlgorithmTest, ChildPath) {
  auto indexed = MustIndex(kBibXml);
  CheckAgainstOracle(indexed, "//article/title");
  CheckAgainstOracle(indexed, "//book/chapter/title");
  CheckAgainstOracle(indexed, "/dblp/article/author");
}

TEST_P(AlgorithmTest, DescendantPath) {
  auto indexed = MustIndex(kBibXml);
  CheckAgainstOracle(indexed, "//book//title");
  CheckAgainstOracle(indexed, "//dblp//title");
  CheckAgainstOracle(indexed, "//chapter//title");
}

TEST_P(AlgorithmTest, RecursiveTags) {
  auto indexed = MustIndex(kNestedXml);
  CheckAgainstOracle(indexed, "//s//t");
  CheckAgainstOracle(indexed, "//s/s/t");
  CheckAgainstOracle(indexed, "//s//s//t");
  CheckAgainstOracle(indexed, "//r//s/t");
  CheckAgainstOracle(indexed, "//s//u");
}

TEST_P(AlgorithmTest, BranchingTwigs) {
  auto indexed = MustIndex(kBibXml);
  CheckAgainstOracle(indexed, "//article[author]/title");
  CheckAgainstOracle(indexed, "//dblp[article][book]");
  CheckAgainstOracle(indexed, "//book[chapter//title]/year");
  CheckAgainstOracle(indexed, "//article[author][year]/title");
}

TEST_P(AlgorithmTest, BranchingOnRecursiveData) {
  auto indexed = MustIndex(kNestedXml);
  CheckAgainstOracle(indexed, "//s[t]//u");
  CheckAgainstOracle(indexed, "//s[//t][//u]");
  CheckAgainstOracle(indexed, "//r[t]//s[t]");
}

TEST_P(AlgorithmTest, ValuePredicates) {
  auto indexed = MustIndex(kBibXml);
  CheckAgainstOracle(indexed, R"(//article[year[="2012"]]/title)");
  CheckAgainstOracle(indexed, R"(//title[~"twig"])");
  CheckAgainstOracle(indexed, R"(//article[author[~"lin"]]/title[~"search"])");
  CheckAgainstOracle(indexed, R"(//author[="jiaheng lu"])");
  CheckAgainstOracle(indexed, R"(//year[="1999"])");  // no matches
}

TEST_P(AlgorithmTest, AttributesAndWildcards) {
  auto indexed = MustIndex(kBibXml);
  CheckAgainstOracle(indexed, "//article/@key");
  CheckAgainstOracle(indexed, R"(//*[@key[="b1"]]/title)");
  CheckAgainstOracle(indexed, "//*/title");
  CheckAgainstOracle(indexed, "//book/*");
}

TEST_P(AlgorithmTest, EmptyResults) {
  auto indexed = MustIndex(kBibXml);
  CheckAgainstOracle(indexed, "//nonexistent");
  CheckAgainstOracle(indexed, "//article/chapter");
  CheckAgainstOracle(indexed, "/article");  // root is dblp
}

TEST_P(AlgorithmTest, OrderSensitiveQueries) {
  auto indexed = MustIndex(kBibXml);
  // author before title holds; title before author does not.
  CheckAgainstOracle(indexed, "//article[ordered][author][title]");
  CheckAgainstOracle(indexed, "//article[ordered][title][author]");
  CheckAgainstOracle(indexed, "//book[ordered][year][chapter]");
}

TEST_P(AlgorithmTest, GeneratedDblpCorpus) {
  datagen::DblpOptions options;
  options.num_publications = 60;
  options.seed = 7;
  index::IndexedDocument indexed(datagen::GenerateDblp(options));
  CheckAgainstOracle(indexed, "//article[author]/title");
  CheckAgainstOracle(indexed, "//inproceedings[booktitle]/year");
  CheckAgainstOracle(indexed, "//dblp/*[author][title]/year");
}

TEST_P(AlgorithmTest, GeneratedXmarkCorpus) {
  datagen::XmarkOptions options;
  options.num_items = 20;
  options.num_people = 10;
  options.num_auctions = 10;
  options.seed = 3;
  index::IndexedDocument indexed(datagen::GenerateXmark(options));
  CheckAgainstOracle(indexed, "//item[payment]//text");
  CheckAgainstOracle(indexed, "//listitem//listitem");
  CheckAgainstOracle(indexed, "//parlist[listitem//parlist]");
  CheckAgainstOracle(indexed, "//person[profile/interest]/name");
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, AlgorithmTest,
    ::testing::Values(Algorithm::kStructuralJoin, Algorithm::kPathStack,
                      Algorithm::kTwigStack, Algorithm::kTJFast),
    [](const ::testing::TestParamInfo<Algorithm>& info) {
      std::string name(AlgorithmName(info.param));
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// ------------------------------------------------- evaluator-level tests

TEST(EvaluatorTest, AutoPicksPathStackForPaths) {
  auto indexed = MustIndex(kBibXml);
  auto result = Evaluate(indexed, Q("//book/title"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.algorithm, "pathstack");
}

TEST(EvaluatorTest, AutoPicksHolisticForTwigs) {
  auto indexed = MustIndex(kBibXml);
  auto result = Evaluate(indexed, Q("//book[year]/title"));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->stats.algorithm == "twigstack" ||
              result->stats.algorithm == "tjfast")
      << result->stats.algorithm;
}

TEST(EvaluatorTest, AutoPrefersTjFastWhenInternalStreamsDominate) {
  // The internal query tag 'a' floods the document; the leaves are rare.
  // Cost-based selection must avoid scanning the huge internal stream.
  std::string xml = "<r>";
  for (int i = 0; i < 50; ++i) {
    xml += "<a><a><a>";
    if (i % 10 == 0) xml += "<b/><c/>";
    xml += "</a></a></a>";
  }
  xml += "</r>";
  auto indexed = MustIndex(xml);
  auto result = Evaluate(indexed, Q("//a[b]/c"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.algorithm, "tjfast");
}

TEST(EvaluatorTest, PathStackRejectsTwigs) {
  auto indexed = MustIndex(kBibXml);
  EvalOptions options;
  options.algorithm = Algorithm::kPathStack;
  auto result = Evaluate(indexed, Q("//book[year]/title"), options);
  EXPECT_FALSE(result.ok());
}

TEST(EvaluatorTest, InvalidQueryRejected) {
  auto indexed = MustIndex(kBibXml);
  TwigQuery query;  // empty
  EXPECT_FALSE(Evaluate(indexed, query).ok());
}

TEST(EvaluatorTest, OrderFilterCanBeDisabled) {
  auto indexed = MustIndex(kBibXml);
  TwigQuery ordered = Q("//article[ordered][title][author]");
  EvalOptions with;
  with.apply_order = true;
  EvalOptions without;
  without.apply_order = false;
  auto filtered = Evaluate(indexed, ordered, with);
  auto unfiltered = Evaluate(indexed, ordered, without);
  ASSERT_TRUE(filtered.ok());
  ASSERT_TRUE(unfiltered.ok());
  EXPECT_LT(filtered->matches.size(), unfiltered->matches.size());
  EXPECT_TRUE(filtered->matches.empty());  // title never precedes author
}

TEST(EvaluatorTest, OutputNodesProjectsAndDeduplicates) {
  auto indexed = MustIndex(kBibXml);
  TwigQuery query = Q("//article[author]/title");
  auto result = Evaluate(indexed, query);
  ASSERT_TRUE(result.ok());
  // a1 has two authors -> two matches, one title; a2 one author.
  EXPECT_EQ(result->matches.size(), 3u);
  std::vector<xml::NodeId> titles = result->OutputNodes(query.output());
  EXPECT_EQ(titles.size(), 2u);
}

TEST(EvaluatorTest, StatsArePopulated) {
  auto indexed = MustIndex(kBibXml);
  auto result = Evaluate(indexed, Q("//article[author]/title"));
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.candidates_scanned, 0u);
  EXPECT_EQ(result->stats.matches, result->matches.size());
  EXPECT_GE(result->stats.elapsed_ms, 0.0);
}

}  // namespace
}  // namespace lotusx::twig
