#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/coding.h"
#include "common/metrics.h"
#include "common/sync.h"
#include "common/thread_pool.h"
#include "lotusx/engine.h"
#include "session/canvas.h"
#include "session/protocol.h"
#include "session/session.h"
#include "tests/test_util.h"
#include "twig/query_parser.h"

namespace lotusx::session {
namespace {

using lotusx::testing::MustIndex;

constexpr std::string_view kXml = R"(<dblp>
  <article>
    <author>jiaheng lu</author>
    <title>twig joins</title>
    <year>2005</year>
  </article>
  <article>
    <author>chunbin lin</author>
    <title>lotusx search</title>
    <year>2012</year>
  </article>
  <book>
    <author>tok wang ling</author>
    <title>xml databases</title>
  </book>
</dblp>)";

// ---------------------------------------------------------------- Canvas

TEST(CanvasTest, BuildAndCompileSimpleQuery) {
  Canvas canvas;
  CanvasNodeId article = canvas.AddNode(0, 0, "article");
  CanvasNodeId title = canvas.AddNode(0, 100, "title");
  ASSERT_TRUE(canvas.Connect(article, title, twig::Axis::kChild).ok());
  ASSERT_TRUE(canvas.SetOutput(title).ok());
  std::map<CanvasNodeId, twig::QueryNodeId> mapping;
  auto query = canvas.Compile(&mapping);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_EQ(query->ToString(), "//article/title!");
  EXPECT_EQ(mapping.at(article), 0);
  EXPECT_EQ(mapping.at(title), 1);
}

TEST(CanvasTest, ChildOrderFollowsXCoordinate) {
  Canvas canvas;
  CanvasNodeId root = canvas.AddNode(50, 0, "article");
  CanvasNodeId right = canvas.AddNode(90, 100, "title");
  CanvasNodeId left = canvas.AddNode(10, 100, "author");
  ASSERT_TRUE(canvas.Connect(root, right, twig::Axis::kChild).ok());
  ASSERT_TRUE(canvas.Connect(root, left, twig::Axis::kChild).ok());
  ASSERT_TRUE(canvas.SetOrdered(root, true).ok());
  auto query = canvas.Compile();
  ASSERT_TRUE(query.ok());
  // author (x=10) is the first child despite being connected second.
  EXPECT_EQ(query->node(query->node(0).children[0]).tag, "author");
  // Moving title to the far left flips the order.
  ASSERT_TRUE(canvas.MoveNode(right, 0, 100).ok());
  query = canvas.Compile();
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->node(query->node(0).children[0]).tag, "title");
}

TEST(CanvasTest, RejectsForests) {
  Canvas canvas;
  canvas.AddNode(0, 0, "a");
  canvas.AddNode(10, 0, "b");
  auto query = canvas.Compile();
  EXPECT_FALSE(query.ok());
  EXPECT_EQ(query.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CanvasTest, RejectsUntaggedBoxes) {
  Canvas canvas;
  CanvasNodeId a = canvas.AddNode(0, 0, "a");
  CanvasNodeId b = canvas.AddNode(0, 10);
  ASSERT_TRUE(canvas.Connect(a, b, twig::Axis::kChild).ok());
  EXPECT_FALSE(canvas.Compile().ok());
}

TEST(CanvasTest, RejectsCyclesSelfLoopsAndSecondParents) {
  Canvas canvas;
  CanvasNodeId a = canvas.AddNode(0, 0, "a");
  CanvasNodeId b = canvas.AddNode(0, 10, "b");
  CanvasNodeId c = canvas.AddNode(0, 20, "c");
  EXPECT_FALSE(canvas.Connect(a, a, twig::Axis::kChild).ok());
  ASSERT_TRUE(canvas.Connect(a, b, twig::Axis::kChild).ok());
  ASSERT_TRUE(canvas.Connect(b, c, twig::Axis::kChild).ok());
  EXPECT_TRUE(canvas.Connect(c, a, twig::Axis::kChild).IsInvalidArgument() ||
              canvas.Connect(c, a, twig::Axis::kChild).code() ==
                  StatusCode::kAlreadyExists);
  EXPECT_EQ(canvas.Connect(a, c, twig::Axis::kChild).code(),
            StatusCode::kAlreadyExists);
}

TEST(CanvasTest, RemoveNodeDropsEdges) {
  Canvas canvas;
  CanvasNodeId a = canvas.AddNode(0, 0, "a");
  CanvasNodeId b = canvas.AddNode(0, 10, "b");
  ASSERT_TRUE(canvas.Connect(a, b, twig::Axis::kChild).ok());
  ASSERT_TRUE(canvas.RemoveNode(b).ok());
  EXPECT_TRUE(canvas.edges().empty());
  auto query = canvas.Compile();
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->size(), 1);
}

TEST(CanvasTest, PredicatesOrderedAndOutputCompile) {
  Canvas canvas;
  CanvasNodeId article = canvas.AddNode(0, 0, "article");
  CanvasNodeId year = canvas.AddNode(0, 10, "year");
  ASSERT_TRUE(canvas.Connect(article, year, twig::Axis::kChild).ok());
  ASSERT_TRUE(canvas
                  .SetPredicate(year, twig::ValuePredicate{
                                          twig::ValuePredicate::Op::kEquals,
                                          "2012"})
                  .ok());
  ASSERT_TRUE(canvas.SetOutput(article).ok());
  auto query = canvas.Compile();
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->node(1).predicate.text, "2012");
  EXPECT_EQ(query->output(), 0);
}

// --------------------------------------------------------------- Session

TEST(SessionTest, SuggestTagsOnEmptyCanvas) {
  auto indexed = MustIndex(kXml);
  Session session(indexed);
  auto candidates = session.SuggestTags(0, twig::Axis::kDescendant, "a");
  ASSERT_TRUE(candidates.ok());
  ASSERT_FALSE(candidates->empty());
  EXPECT_EQ((*candidates)[0].text, "author");  // 3 authors > 2 articles
}

TEST(SessionTest, SuggestTagsIsPositionAware) {
  auto indexed = MustIndex(kXml);
  Session session(indexed);
  CanvasNodeId book = session.canvas().AddNode(0, 0, "book");
  auto candidates = session.SuggestTags(book, twig::Axis::kChild, "");
  ASSERT_TRUE(candidates.ok());
  std::vector<std::string> texts;
  for (const auto& candidate : *candidates) texts.push_back(candidate.text);
  EXPECT_NE(std::find(texts.begin(), texts.end(), "title"), texts.end());
  // year never occurs under book.
  EXPECT_EQ(std::find(texts.begin(), texts.end(), "year"), texts.end());
}

TEST(SessionTest, SuggestValuesForBox) {
  auto indexed = MustIndex(kXml);
  Session session(indexed);
  CanvasNodeId author = session.canvas().AddNode(0, 0, "author");
  auto candidates = session.SuggestValues(author, "l");
  ASSERT_TRUE(candidates.ok());
  std::vector<std::string> texts;
  for (const auto& candidate : *candidates) texts.push_back(candidate.text);
  EXPECT_NE(std::find(texts.begin(), texts.end(), "lu"), texts.end());
  EXPECT_NE(std::find(texts.begin(), texts.end(), "lin"), texts.end());
  // "lotusx" occurs only in titles.
  EXPECT_EQ(std::find(texts.begin(), texts.end(), "lotusx"), texts.end());
}

TEST(SessionTest, RunExecutesAndRanks) {
  auto indexed = MustIndex(kXml);
  Session session(indexed);
  Canvas& canvas = session.canvas();
  CanvasNodeId article = canvas.AddNode(0, 0, "article");
  CanvasNodeId title = canvas.AddNode(0, 10, "title");
  ASSERT_TRUE(canvas.Connect(article, title, twig::Axis::kChild).ok());
  ASSERT_TRUE(canvas.SetOutput(title).ok());
  auto response = session.Run();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->results.size(), 2u);
  EXPECT_TRUE(response->rewrites_applied.empty());
}

TEST(SessionTest, RunFallsBackToRewriting) {
  auto indexed = MustIndex(kXml);
  Session session(indexed);
  Canvas& canvas = session.canvas();
  CanvasNodeId article = canvas.AddNode(0, 0, "article");
  CanvasNodeId title = canvas.AddNode(0, 10, "titel");  // typo
  ASSERT_TRUE(canvas.Connect(article, title, twig::Axis::kChild).ok());
  auto response = session.Run();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_FALSE(response->rewrites_applied.empty());
  EXPECT_EQ(response->results.size(), 2u);
}

TEST(SessionTest, UndoRestoresCanvas) {
  auto indexed = MustIndex(kXml);
  Session session(indexed);
  session.canvas().AddNode(0, 0, "article");
  session.Checkpoint();
  session.canvas().AddNode(0, 10, "junk");
  EXPECT_EQ(session.canvas().nodes().size(), 2u);
  ASSERT_TRUE(session.Undo().ok());
  EXPECT_EQ(session.canvas().nodes().size(), 1u);
  EXPECT_TRUE(session.Undo().IsInvalidArgument() ||
              session.Undo().code() == StatusCode::kFailedPrecondition);
}

// -------------------------------------------------------------- Protocol

class ProtocolTest : public ::testing::Test {
 protected:
  ProtocolTest() : indexed_(MustIndex(kXml)), session_(indexed_),
                   interpreter_(&session_) {}

  std::string Must(std::string_view line) {
    auto result = interpreter_.Execute(line);
    EXPECT_TRUE(result.ok()) << line << " -> " << result.status().ToString();
    return result.ok() ? *result : "";
  }

  index::IndexedDocument indexed_;
  Session session_;
  ProtocolInterpreter interpreter_;
};

TEST_F(ProtocolTest, FullInteractionFlow) {
  EXPECT_EQ(Must("ADD 0 0 article"), "node 1");
  EXPECT_EQ(Must("ADD 0 100 title"), "node 2");
  EXPECT_EQ(Must("EDGE 1 2 /"), "ok");
  EXPECT_EQ(Must("OUTPUT 2"), "ok");
  EXPECT_EQ(Must("QUERY"), "//article/title!");
  std::string run = Must("RUN");
  EXPECT_NE(run.find("matches: 2"), std::string::npos) << run;
}

TEST_F(ProtocolTest, TypeSuggestsCandidates) {
  Must("ADD 0 0 article");
  std::string suggestions = Must("TYPE 1 / t");
  EXPECT_NE(suggestions.find("title"), std::string::npos);
  EXPECT_EQ(suggestions.find("author"), std::string::npos);
}

TEST_F(ProtocolTest, AcceptCreatesAndConnectsSuggestedBox) {
  Must("ADD 50 0 article");
  std::string suggestions = Must("TYPE 1 / t");
  ASSERT_NE(suggestions.find("title"), std::string::npos);
  std::string accepted = Must("ACCEPT 1");
  EXPECT_NE(accepted.find("(title)"), std::string::npos) << accepted;
  EXPECT_EQ(Must("QUERY"), "//article!/title");
  // The new box was auto-placed below the anchor.
  const CanvasNode* box = session_.canvas().FindNode(2);
  ASSERT_NE(box, nullptr);
  EXPECT_GT(box->y, 0);
  // One acceptance per TYPE; a second ACCEPT needs a new TYPE.
  EXPECT_EQ(interpreter_.Execute("ACCEPT 1").status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ProtocolTest, AcceptValidatesArguments) {
  EXPECT_EQ(interpreter_.Execute("ACCEPT 1").status().code(),
            StatusCode::kFailedPrecondition);  // nothing typed yet
  Must("ADD 0 0 article");
  Must("TYPE 1 / t");
  EXPECT_EQ(interpreter_.Execute("ACCEPT 99").status().code(),
            StatusCode::kOutOfRange);
  EXPECT_FALSE(interpreter_.Execute("ACCEPT x").ok());
  EXPECT_FALSE(interpreter_.Execute("ACCEPT 1 5").ok());  // x without y
  // Explicit placement works.
  std::string accepted = Must("ACCEPT 1 40 260");
  EXPECT_NE(accepted.find("node"), std::string::npos);
  const CanvasNode* box = session_.canvas().FindNode(2);
  ASSERT_NE(box, nullptr);
  EXPECT_DOUBLE_EQ(box->x, 40);
  EXPECT_DOUBLE_EQ(box->y, 260);
}

TEST_F(ProtocolTest, AcceptAtRootCreatesUnconnectedRootBox) {
  std::string suggestions = Must("TYPE 0 // a");
  ASSERT_FALSE(suggestions.empty());
  std::string accepted = Must("ACCEPT 1");
  EXPECT_NE(accepted.find("node 1"), std::string::npos);
  EXPECT_TRUE(session_.canvas().edges().empty());
}

TEST_F(ProtocolTest, TypeValSuggestsTerms) {
  Must("ADD 0 0 author");
  std::string suggestions = Must("TYPEVAL 1 l");
  EXPECT_NE(suggestions.find("lu"), std::string::npos);
}

TEST_F(ProtocolTest, ValuePredicateCommands) {
  Must("ADD 0 0 year");
  EXPECT_EQ(Must("VALUE 1 = 2012"), "ok");
  EXPECT_EQ(Must("QUERY"), R"(//year![="2012"])");
  EXPECT_EQ(Must("VALUE 1 ~ 2012"), "ok");
  EXPECT_EQ(Must("VALUE 1 NONE"), "ok");
  EXPECT_EQ(Must("QUERY"), "//year!");
}

TEST_F(ProtocolTest, OrderedAndShow) {
  Must("ADD 0 0 article");
  Must("ADD 10 50 author");
  Must("ADD 90 50 title");
  Must("EDGE 1 2 /");
  Must("EDGE 1 3 /");
  EXPECT_EQ(Must("ORDERED 1 ON"), "ok");
  std::string show = Must("SHOW");
  EXPECT_NE(show.find("[ordered]"), std::string::npos);
  EXPECT_NE(Must("QUERY").find("[ordered]"), std::string::npos);
}

TEST_F(ProtocolTest, CheckpointUndoReset) {
  Must("ADD 0 0 article");
  Must("CHECKPOINT");
  Must("ADD 0 10 junk");
  EXPECT_EQ(Must("UNDO"), "ok");
  EXPECT_EQ(session_.canvas().nodes().size(), 1u);
  EXPECT_EQ(Must("RESET"), "ok");
  EXPECT_TRUE(session_.canvas().empty());
}

TEST_F(ProtocolTest, ErrorsForBadCommands) {
  EXPECT_FALSE(interpreter_.Execute("FLY 1 2").ok());
  EXPECT_FALSE(interpreter_.Execute("ADD").ok());
  EXPECT_FALSE(interpreter_.Execute("EDGE 1 2 |").ok());
  EXPECT_FALSE(interpreter_.Execute("TAG 99 x").ok());
  EXPECT_FALSE(interpreter_.Execute("ADD x y").ok());
  EXPECT_TRUE(interpreter_.Execute("").ok());  // blank line is a no-op
}

TEST_F(ProtocolTest, RunReportsRewrites) {
  Must("ADD 0 0 article");
  Must("ADD 0 10 titel");
  Must("EDGE 1 2 /");
  std::string run = Must("RUN");
  EXPECT_NE(run.find("rewritten"), std::string::npos) << run;
}

TEST_F(ProtocolTest, ExplainAndExports) {
  Must("ADD 0 0 article");
  Must("ADD 0 10 title");
  Must("EDGE 1 2 /");
  std::string explain = Must("EXPLAIN");
  EXPECT_NE(explain.find("estimated matches"), std::string::npos) << explain;
  // Without an output mark the root is selected and title is a predicate.
  EXPECT_EQ(Must("XPATH"), "//article[title]");
  Must("OUTPUT 2");
  EXPECT_EQ(Must("XPATH"), "//article/title");
  std::string xq = Must("XQUERY");
  EXPECT_NE(xq.find("for $n0 in //article"), std::string::npos) << xq;
}

TEST_F(ProtocolTest, SvgCommandRendersAndWrites) {
  Must("ADD 0 0 article");
  std::string svg = Must("SVG");
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  std::string path = ::testing::TempDir() + "/lotusx_protocol.svg";
  std::string response = Must("SVG " + path);
  EXPECT_NE(response.find("wrote"), std::string::npos);
  std::string contents;
  EXPECT_TRUE(ReadFileToString(path, &contents).ok());
  EXPECT_NE(contents.find("<svg"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(ProtocolTest, HelpListsCommands) {
  std::string help = Must("HELP");
  EXPECT_NE(help.find("TYPEVAL"), std::string::npos);
  EXPECT_NE(help.find("RUN"), std::string::npos);
  EXPECT_NE(help.find("STATS [DOC]"), std::string::npos);
}

// ----------------------------------------------------------- STATS verb

// The acceptance pin of the observability layer: after a scripted
// Search/CompleteTag workload, the STATS exposition must carry a nonzero
// search-latency histogram, cache hit and miss counters, the thread-pool
// queue-depth gauge, and per-operator-kind execution counters.
TEST(StatsVerbTest, ExpositionCoversPipelineAfterWorkload) {
  auto engine = Engine::FromXmlText(kXml);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  engine->EnableResultCache(16);

  // One miss, one hit.
  ASSERT_TRUE(engine->Search("//article[author]/title").ok());
  ASSERT_TRUE(engine->Search("//article[author]/title").ok());
  EXPECT_EQ(engine->cache_hits(), 1u);
  EXPECT_EQ(engine->cache_misses(), 1u);

  // One completion request.
  autocomplete::TagRequest request;
  request.anchor = 0;
  request.axis = twig::Axis::kChild;
  ASSERT_TRUE(
      engine->CompleteTag(twig::ParseQuery("//article").value(), request)
          .ok());

  // Park a one-thread pool and queue extra tasks so the queue-depth
  // gauge is provably nonzero at snapshot time.
  ThreadPool pool(1);
  Mutex mu;
  CondVar cv;
  bool release = false;
  std::atomic<bool> started{false};
  ASSERT_TRUE(pool.Submit([&] {
    started = true;
    MutexLock lock(mu);
    while (!release) cv.Wait(mu);
  }));
  while (!started) std::this_thread::yield();
  ASSERT_TRUE(pool.Submit([] {}));
  ASSERT_TRUE(pool.Submit([] {}));

  // Numeric pins through the embedder API...
  metrics::MetricsSnapshot snapshot = engine->MetricsSnapshot();
  EXPECT_GT(snapshot.HistogramCountTotal("lotusx_search_latency_usec"), 0u);
  EXPECT_GT(snapshot.CounterTotal("lotusx_cache_hits_total"), 0u);
  EXPECT_GT(snapshot.CounterTotal("lotusx_cache_misses_total"), 0u);
  EXPECT_EQ(snapshot.GaugeValueOr("lotusx_threadpool_queue_depth", -1), 2);
  EXPECT_GT(snapshot.CounterTotal("lotusx_plan_operator_execs_total"), 0u);
  EXPECT_GT(snapshot.CounterTotal("lotusx_complete_total"), 0u);
  EXPECT_GT(snapshot.CounterTotal("lotusx_search_total"), 0u);

  // ...and the same families over the session protocol.
  Session session = engine->NewSession();
  ProtocolInterpreter interpreter(&session);
  auto stats = interpreter.Execute("STATS");
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  for (const char* family :
       {"lotusx_search_latency_usec_count", "lotusx_cache_hits_total",
        "lotusx_cache_misses_total", "lotusx_threadpool_queue_depth",
        "lotusx_plan_operator_execs_total", "lotusx_complete_total",
        "lotusx_stage_latency_usec_count"}) {
    EXPECT_NE(stats->find(family), std::string::npos)
        << "missing " << family << " in:\n"
        << *stats;
  }

  {
    MutexLock lock(mu);
    release = true;
  }
  cv.SignalAll();
  pool.Shutdown();

  // STATS DOC still renders document statistics; other arguments fail.
  auto doc_stats = interpreter.Execute("STATS DOC");
  ASSERT_TRUE(doc_stats.ok());
  EXPECT_NE(doc_stats->find("distinct paths"), std::string::npos);
  EXPECT_FALSE(interpreter.Execute("STATS nonsense").ok());
}

}  // namespace
}  // namespace lotusx::session
