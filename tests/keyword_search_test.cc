#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "datagen/datagen.h"
#include "keyword/keyword_search.h"
#include "lotusx/engine.h"
#include "tests/test_util.h"

namespace lotusx::keyword {
namespace {

using lotusx::testing::MustIndex;
using xml::NodeId;

constexpr std::string_view kXml = R"(<dblp>
  <article>
    <author>jiaheng lu</author>
    <title>holistic twig joins</title>
    <year>2005</year>
  </article>
  <article>
    <author>chunbin lin</author>
    <title>lotusx demo with twig search</title>
    <year>2012</year>
  </article>
  <book>
    <author>tok wang ling</author>
    <title>xml data management</title>
    <chapter>
      <title>twig basics by lu</title>
    </chapter>
  </book>
</dblp>)";

std::vector<NodeId> Nodes(const std::vector<KeywordHit>& hits) {
  std::vector<NodeId> nodes;
  for (const KeywordHit& hit : hits) nodes.push_back(hit.node);
  std::sort(nodes.begin(), nodes.end());
  return nodes;
}

/// Reference SLCA: every element whose subtree contains all keywords and
/// no proper descendant of which also does.
std::vector<NodeId> OracleSlca(const index::IndexedDocument& indexed,
                               const std::vector<std::string>& tokens) {
  const xml::Document& document = indexed.document();
  std::vector<NodeId> all;
  for (NodeId e = 0; e < document.num_nodes(); ++e) {
    if (document.node(e).kind == xml::NodeKind::kText) continue;
    bool covers_all = true;
    for (const std::string& token : tokens) {
      bool found = false;
      for (NodeId v : indexed.terms().DecodePostings(token)) {
        if (v == e || document.IsAncestor(e, v)) {
          found = true;
          break;
        }
      }
      if (!found) {
        covers_all = false;
        break;
      }
    }
    if (covers_all) all.push_back(e);
  }
  std::vector<NodeId> smallest;
  for (NodeId u : all) {
    bool has_inner = false;
    for (NodeId w : all) {
      if (indexed.document().IsAncestor(u, w)) {
        has_inner = true;
        break;
      }
    }
    if (!has_inner) smallest.push_back(u);
  }
  return smallest;
}

TEST(SlcaSearchTest, SingleKeywordReturnsValueNodes) {
  auto indexed = MustIndex(kXml);
  auto hits = SlcaSearch(indexed, "lotusx");
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ(indexed.document().TagName((*hits)[0].node), "title");
}

TEST(SlcaSearchTest, ConnectsKeywordsAtTheirSmallestScope) {
  auto indexed = MustIndex(kXml);
  // "twig" + "2005" connect inside the first article only (the other twig
  // occurrences lack a 2005 sibling).
  auto hits = SlcaSearch(indexed, "twig 2005");
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ(indexed.document().TagName((*hits)[0].node), "article");
}

TEST(SlcaSearchTest, SlcaExcludesAncestorsOfSmallerAnswers) {
  auto indexed = MustIndex(kXml);
  // "twig lu": connects inside chapter/title ("twig basics by lu") — and
  // within article 1 (author lu + title twig). dblp also contains both but
  // is an ancestor of smaller answers, so it must not appear.
  auto hits = SlcaSearch(indexed, "twig lu");
  ASSERT_TRUE(hits.ok());
  std::vector<std::string> tags;
  for (const KeywordHit& hit : *hits) {
    tags.emplace_back(indexed.document().TagName(hit.node));
  }
  std::sort(tags.begin(), tags.end());
  EXPECT_EQ(tags, (std::vector<std::string>{"article", "title"}));
}

TEST(SlcaSearchTest, UnknownKeywordYieldsNothing) {
  auto indexed = MustIndex(kXml);
  auto hits = SlcaSearch(indexed, "zeppelin");
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits->empty());
  auto mixed = SlcaSearch(indexed, "twig zeppelin");
  ASSERT_TRUE(mixed.ok());
  EXPECT_TRUE(mixed->empty());
}

TEST(SlcaSearchTest, EmptyOrUntokenizableInputRejected) {
  auto indexed = MustIndex(kXml);
  EXPECT_FALSE(SlcaSearch(indexed, "").ok());
  EXPECT_FALSE(SlcaSearch(indexed, " ,;! ").ok());
}

TEST(SlcaSearchTest, DuplicateKeywordsAreHarmless) {
  auto indexed = MustIndex(kXml);
  auto once = SlcaSearch(indexed, "twig lu");
  auto twice = SlcaSearch(indexed, "twig lu twig LU");
  ASSERT_TRUE(once.ok());
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ(Nodes(*once), Nodes(*twice));
}

TEST(SlcaSearchTest, WitnessesCoverEveryKeyword) {
  auto indexed = MustIndex(kXml);
  auto hits = SlcaSearch(indexed, "twig 2005");
  ASSERT_TRUE(hits.ok());
  ASSERT_FALSE(hits->empty());
  for (const KeywordHit& hit : *hits) {
    ASSERT_EQ(hit.witnesses.size(), 2u);
    for (NodeId witness : hit.witnesses) {
      ASSERT_NE(witness, xml::kInvalidNodeId);
      EXPECT_TRUE(witness == hit.node ||
                  indexed.document().IsAncestor(hit.node, witness));
    }
  }
}

TEST(SlcaSearchTest, TighterConnectionsScoreHigher) {
  auto indexed = MustIndex(kXml);
  auto hits = SlcaSearch(indexed, "twig lu");
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 2u);
  // The single title (subtree of 2 nodes) beats the whole article.
  EXPECT_EQ(indexed.document().TagName((*hits)[0].node), "title");
  EXPECT_GT((*hits)[0].score, (*hits)[1].score);
}

TEST(SlcaSearchTest, LimitTruncates) {
  auto indexed = MustIndex(kXml);
  KeywordSearchOptions options;
  options.limit = 1;
  auto hits = SlcaSearch(indexed, "twig", options);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 1u);
}

class SlcaOracleSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SlcaOracleSweep, MatchesBruteForceOracle) {
  uint64_t seed = GetParam();
  datagen::DblpOptions options;
  options.seed = seed;
  options.num_publications = 15;
  options.title_vocabulary = 30;  // dense co-occurrence
  options.author_pool_size = 15;
  index::IndexedDocument indexed(datagen::GenerateDblp(options));
  Random random(seed * 37 + 3);

  // Random 1-3 keyword queries from the document's own vocabulary.
  std::vector<index::Completion> vocabulary =
      indexed.terms().term_trie().Complete("", 200);
  ASSERT_FALSE(vocabulary.empty());
  for (int i = 0; i < 15; ++i) {
    int k = 1 + static_cast<int>(random.NextBounded(3));
    std::vector<std::string> tokens;
    std::string joined;
    for (int j = 0; j < k; ++j) {
      tokens.push_back(
          vocabulary[random.NextBounded(vocabulary.size())].key);
      joined += tokens.back() + " ";
    }
    std::sort(tokens.begin(), tokens.end());
    tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
    KeywordSearchOptions search_options;
    search_options.limit = 10'000;
    auto hits = SlcaSearch(indexed, joined, search_options);
    ASSERT_TRUE(hits.ok());
    EXPECT_EQ(Nodes(*hits), OracleSlca(indexed, tokens)) << joined;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SlcaOracleSweep,
                         ::testing::Range<uint64_t>(0, 6));

TEST(EngineKeywordTest, WrapperWorks) {
  auto engine = Engine::FromXmlText(kXml);
  ASSERT_TRUE(engine.ok());
  auto hits = engine->KeywordSearch("twig 2005");
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  EXPECT_EQ(engine->Snippet((*hits)[0].node).substr(0, 8), "<article");
}

}  // namespace
}  // namespace lotusx::keyword
