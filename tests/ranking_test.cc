#include <gtest/gtest.h>

#include "ranking/ranker.h"
#include "tests/test_util.h"
#include "twig/evaluator.h"
#include "twig/query_parser.h"

namespace lotusx::ranking {
namespace {

using lotusx::testing::MustIndex;
using twig::TwigQuery;

TwigQuery Q(std::string_view text) {
  auto result = twig::ParseQuery(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

std::vector<RankedResult> RunAndRank(const index::IndexedDocument& indexed,
                                     std::string_view query_text,
                                     const RankingOptions& options = {}) {
  TwigQuery query = Q(query_text);
  auto result = twig::Evaluate(indexed, query);
  EXPECT_TRUE(result.ok());
  Ranker ranker(indexed);
  return ranker.Rank(query, result->matches, options);
}

constexpr std::string_view kXml = R"(<dblp>
  <article>
    <title>xml xml xml query processing</title>
    <year>2010</year>
  </article>
  <article>
    <title>databases with a mention of xml</title>
    <year>2011</year>
  </article>
  <article>
    <title>graph processing</title>
    <year>2012</year>
  </article>
</dblp>)";

TEST(RankerTest, ContentScoreFavorsHigherTermFrequency) {
  auto indexed = MustIndex(kXml);
  std::vector<RankedResult> ranked =
      RunAndRank(indexed, R"(//title[~"xml"])");
  ASSERT_EQ(ranked.size(), 2u);
  // The title with tf=3 outranks the one with tf=1.
  EXPECT_GT(ranked[0].content_score, ranked[1].content_score);
  EXPECT_EQ(indexed.document().ContentString(ranked[0].output),
            "xml xml xml query processing");
}

TEST(RankerTest, RareTermsScoreHigherThanCommonOnes) {
  auto indexed = MustIndex(R"(<r>
    <d>common common rare</d>
    <d>common</d>
    <d>common</d>
    <d>common</d>
  </r>)");
  Ranker ranker(indexed);
  TwigQuery rare = Q(R"(//d[~"rare"])");
  TwigQuery common = Q(R"(//d[~"common"])");
  auto rare_result = twig::Evaluate(indexed, rare);
  auto common_result = twig::Evaluate(indexed, common);
  ASSERT_TRUE(rare_result.ok());
  ASSERT_TRUE(common_result.ok());
  double rare_score =
      ranker.Score(rare, rare_result->matches[0]).content_score;
  // The same node matched via the common term scores lower.
  double common_score =
      ranker.Score(common, common_result->matches[0]).content_score;
  EXPECT_GT(rare_score, common_score);
}

TEST(RankerTest, StructureScoreFavorsTightMatches) {
  auto indexed = MustIndex(R"(<r>
    <a><b><c><d><t>deep</t></d></c></b></a>
    <a><t>shallow</t></a>
  </r>)");
  std::vector<RankedResult> ranked = RunAndRank(indexed, "//a//t");
  ASSERT_EQ(ranked.size(), 2u);
  // The parent-child pair (slack 0, small span) outranks the distant one.
  EXPECT_EQ(indexed.document().ContentString(ranked[0].output), "shallow");
  EXPECT_GT(ranked[0].structure_score, ranked[1].structure_score);
}

TEST(RankerTest, SpecificityFavorsRarePaths) {
  auto indexed = MustIndex(R"(<r>
    <common/><common/><common/><common/><common/><common/><common/>
    <nest><special/></nest>
  </r>)");
  Ranker ranker(indexed);
  TwigQuery special = Q("//special");
  TwigQuery common = Q("//common");
  auto special_result = twig::Evaluate(indexed, special);
  auto common_result = twig::Evaluate(indexed, common);
  double special_score =
      ranker.Score(special, special_result->matches[0]).specificity_score;
  double common_score =
      ranker.Score(common, common_result->matches[0]).specificity_score;
  EXPECT_GT(special_score, common_score);
}

TEST(RankerTest, EqualsPredicateGetsContentBonus) {
  auto indexed = MustIndex(kXml);
  Ranker ranker(indexed);
  TwigQuery with_eq = Q(R"(//article[year[="2012"]])");
  TwigQuery without = Q("//article[year]");
  auto eq_result = twig::Evaluate(indexed, with_eq);
  ASSERT_TRUE(eq_result.ok());
  ASSERT_EQ(eq_result->matches.size(), 1u);
  double eq_content =
      ranker.Score(with_eq, eq_result->matches[0]).content_score;
  EXPECT_GT(eq_content, 0.0);
}

TEST(RankerTest, WeightsChangeOrdering) {
  auto indexed = MustIndex(R"(<r>
    <a><t>needle</t></a>
    <a><deep><t>needle needle needle</t></deep></a>
  </r>)");
  RankingOptions content_heavy;
  content_heavy.content_weight = 10;
  content_heavy.structure_weight = 0;
  content_heavy.specificity_weight = 0;
  std::vector<RankedResult> by_content =
      RunAndRank(indexed, R"(//a//t[~"needle"])", content_heavy);
  ASSERT_EQ(by_content.size(), 2u);
  EXPECT_EQ(indexed.document().ContentString(by_content[0].output),
            "needle needle needle");

  RankingOptions structure_heavy;
  structure_heavy.content_weight = 0;
  structure_heavy.structure_weight = 10;
  structure_heavy.specificity_weight = 0;
  std::vector<RankedResult> by_structure =
      RunAndRank(indexed, R"(//a//t[~"needle"])", structure_heavy);
  EXPECT_EQ(indexed.document().ContentString(by_structure[0].output),
            "needle");
}

TEST(RankerTest, TopKTruncates) {
  auto indexed = MustIndex(kXml);
  RankingOptions options;
  options.top_k = 1;
  std::vector<RankedResult> ranked = RunAndRank(indexed, "//title", options);
  EXPECT_EQ(ranked.size(), 1u);
}

TEST(RankerTest, DeterministicTieBreakByDocumentOrder) {
  auto indexed = MustIndex("<r><x/><x/><x/></r>");
  std::vector<RankedResult> ranked = RunAndRank(indexed, "//x");
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_LT(ranked[0].output, ranked[1].output);
  EXPECT_LT(ranked[1].output, ranked[2].output);
}

TEST(RankerTest, ScoreIsComposedOfWeightedSignals) {
  auto indexed = MustIndex(kXml);
  Ranker ranker(indexed);
  TwigQuery query = Q(R"(//title[~"xml"])");
  auto result = twig::Evaluate(indexed, query);
  RankingOptions options;
  options.content_weight = 2;
  options.structure_weight = 3;
  options.specificity_weight = 5;
  RankedResult scored = ranker.Score(query, result->matches[0], options);
  EXPECT_NEAR(scored.score,
              2 * scored.content_score + 3 * scored.structure_score +
                  5 * scored.specificity_score,
              1e-9);
}

}  // namespace
}  // namespace lotusx::ranking
