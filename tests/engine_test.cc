#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "lotusx/engine.h"
#include "xml/writer.h"

namespace lotusx {
namespace {

constexpr std::string_view kXml = R"(<dblp>
  <article key="a1">
    <author>jiaheng lu</author>
    <title>twig joins revisited</title>
    <year>2005</year>
  </article>
  <article key="a2">
    <author>chunbin lin</author>
    <title>lotusx graphical search</title>
    <year>2012</year>
  </article>
</dblp>)";

TEST(EngineTest, FromXmlTextAndSearch) {
  auto engine = Engine::FromXmlText(kXml);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  auto result = engine->Search("//article[author]/title");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->results.size(), 2u);
  EXPECT_TRUE(result->rewrites_applied.empty());
}

TEST(EngineTest, ExplainRendersThePhysicalPlan) {
  auto engine = Engine::FromXmlText(kXml);
  ASSERT_TRUE(engine.ok());
  auto text = engine->Explain("//article[author]/title");
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("stream-scan"), std::string::npos) << *text;
  EXPECT_NE(text->find("est rows="), std::string::npos) << *text;
  EXPECT_NE(text->find("actual rows="), std::string::npos) << *text;
  EXPECT_NE(text->find("estimated matches"), std::string::npos) << *text;
}

TEST(EngineTest, ExplainHonorsEvalOptions) {
  auto engine = Engine::FromXmlText(kXml);
  ASSERT_TRUE(engine.ok());
  SearchOptions options;
  options.eval.algorithm = twig::Algorithm::kStructuralJoin;
  auto text = engine->Explain("//article[author]/title", options);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("binary-structural-join"), std::string::npos) << *text;
  EXPECT_NE(text->find("forced by caller hint"), std::string::npos) << *text;
}

TEST(EngineTest, ExplainRejectsBadSyntax) {
  auto engine = Engine::FromXmlText(kXml);
  ASSERT_TRUE(engine.ok());
  EXPECT_FALSE(engine->Explain("not a query").ok());
}

TEST(EngineTest, SearchRejectsBadSyntax) {
  auto engine = Engine::FromXmlText(kXml);
  ASSERT_TRUE(engine.ok());
  EXPECT_FALSE(engine->Search("not a query").ok());
}

TEST(EngineTest, FromXmlTextRejectsMalformedXml) {
  EXPECT_FALSE(Engine::FromXmlText("<a><b></a>").ok());
}

TEST(EngineTest, SearchAppliesRewritesOnEmpty) {
  auto engine = Engine::FromXmlText(kXml);
  ASSERT_TRUE(engine.ok());
  auto result = engine->Search("//article/titel");
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->rewrites_applied.empty());
  EXPECT_EQ(result->results.size(), 2u);
  // Rewriting can be disabled.
  SearchOptions options;
  options.rewrite_on_empty = false;
  auto strict = engine->Search("//article/titel", options);
  ASSERT_TRUE(strict.ok());
  EXPECT_TRUE(strict->results.empty());
}

TEST(EngineTest, IndexFileRoundTrip) {
  auto engine = Engine::FromXmlText(kXml);
  ASSERT_TRUE(engine.ok());
  std::string path = ::testing::TempDir() + "/lotusx_engine_test.ltsx";
  ASSERT_TRUE(engine->SaveIndex(path).ok());
  auto loaded = Engine::FromIndexFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  auto a = engine->Search("//article/title");
  auto b = loaded->Search("//article/title");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->results.size(), b->results.size());
  for (size_t i = 0; i < a->results.size(); ++i) {
    EXPECT_EQ(a->results[i].output, b->results[i].output);
    EXPECT_DOUBLE_EQ(a->results[i].score, b->results[i].score);
  }
  std::remove(path.c_str());
}

TEST(EngineTest, FromXmlFile) {
  std::string path = ::testing::TempDir() + "/lotusx_engine_doc.xml";
  ASSERT_TRUE(WriteStringToFile(path, kXml).ok());
  auto engine = Engine::FromXmlFile(path);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ(engine->document().TagName(engine->document().root()), "dblp");
  std::remove(path.c_str());
  EXPECT_FALSE(Engine::FromXmlFile("/nonexistent.xml").ok());
}

TEST(EngineTest, CompletionPassThrough) {
  auto engine = Engine::FromXmlText(kXml);
  ASSERT_TRUE(engine.ok());
  twig::TwigQuery query;
  query.AddRoot("article");
  autocomplete::TagRequest request;
  request.anchor = 0;
  request.axis = twig::Axis::kChild;
  request.prefix = "a";
  auto tags = engine->CompleteTag(query, request);
  ASSERT_TRUE(tags.ok());
  ASSERT_FALSE(tags->empty());
  EXPECT_EQ((*tags)[0].text, "author");
  auto values = engine->CompleteValue(query, 0, "");
  ASSERT_TRUE(values.ok());
}

TEST(EngineTest, SnippetRendersNodes) {
  auto engine = Engine::FromXmlText(kXml);
  ASSERT_TRUE(engine.ok());
  auto result = engine->Search("//article[author]/title");
  ASSERT_TRUE(result.ok());
  std::string snippet = engine->Snippet(result->results[0].output);
  EXPECT_EQ(snippet.substr(0, 7), "<title>");
  // Truncation.
  std::string tiny = engine->Snippet(result->results[0].output, 10);
  EXPECT_LE(tiny.size(), 10u);
  EXPECT_EQ(tiny.substr(tiny.size() - 3), "...");
}

TEST(EngineTest, SessionIntegration) {
  auto engine = Engine::FromXmlText(kXml);
  ASSERT_TRUE(engine.ok());
  session::Session session = engine->NewSession();
  session::CanvasNodeId root = session.canvas().AddNode(0, 0, "article");
  auto suggestions = session.SuggestTags(root, twig::Axis::kChild, "");
  ASSERT_TRUE(suggestions.ok());
  EXPECT_FALSE(suggestions->empty());
}

TEST(EngineTest, EndToEndOnGeneratedCorpus) {
  datagen::DblpOptions options;
  options.num_publications = 200;
  xml::Document doc = datagen::GenerateDblp(options);
  std::string xml = xml::WriteXml(doc);
  auto engine = Engine::FromXmlText(xml);
  ASSERT_TRUE(engine.ok());
  auto result = engine->Search("//article[author][year]/title");
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->results.size(), 0u);
  // Order-sensitive query: author always precedes title in generated
  // data, so the reversed constraint has no strict matches.
  SearchOptions strict;
  strict.rewrite_on_empty = false;
  auto ordered = engine->Search("//article[ordered][author][title]", strict);
  auto reversed = engine->Search("//article[ordered][title][author]", strict);
  ASSERT_TRUE(ordered.ok());
  ASSERT_TRUE(reversed.ok());
  EXPECT_GT(ordered->results.size(), 0u);
  EXPECT_TRUE(reversed->results.empty());
}

}  // namespace
}  // namespace lotusx
