// Tests for the cost-based planner layer (twig/plan/): ChooseAlgorithm
// decision boundaries, plan shapes, the plan-equivalence guarantee (every
// physical plan returns exactly the brute-force match set), and the
// rendered EXPLAIN output the acceptance criteria pin.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "datagen/datagen.h"
#include "tests/test_util.h"
#include "twig/evaluator.h"
#include "twig/plan/physical_plan.h"
#include "twig/query_parser.h"
#include "twig/selectivity.h"

namespace lotusx::twig {
namespace {

using lotusx::testing::BruteForceMatches;
using lotusx::testing::MustIndex;

constexpr std::string_view kBibXml = R"(<dblp>
  <article key="a1">
    <author>jiaheng lu</author>
    <author>chunbin lin</author>
    <title>twig pattern matching</title>
    <year>2005</year>
  </article>
  <article key="a2">
    <author>chunbin lin</author>
    <title>lotusx graphical search</title>
    <year>2012</year>
  </article>
  <book key="b1">
    <author>tok wang ling</author>
    <title>xml databases</title>
    <year>2012</year>
    <chapter><title>twig basics</title><section><title>stacks</title>
    </section></chapter>
  </book>
</dblp>)";

constexpr std::string_view kNestedXml = R"(<r>
  <s><s><t>one</t></s><t>two</t></s>
  <s><u><s><t>three</t><u/></s></u></s>
  <t>four</t>
</r>)";

TwigQuery Q(std::string_view text) {
  auto result = ParseQuery(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

/// A document where the query //a[b][c] sees exactly `num_a` <a> elements
/// and 30 each of <b> and <c>: leaf streams total 60, so num_a = 40 puts
/// the leaf/total ratio exactly on the 0.6 threshold.
index::IndexedDocument ThresholdDoc(int num_a) {
  std::string xml = "<r>";
  for (int i = 0; i < 30; ++i) xml += "<a><b/><c/></a>";
  for (int i = 30; i < num_a; ++i) xml += "<a/>";
  xml += "</r>";
  return MustIndex(xml);
}

// ----------------------------------------- ChooseAlgorithm boundaries

TEST(ChooseAlgorithmBoundaryTest, PathQueriesAlwaysUsePathStack) {
  auto indexed = MustIndex(kBibXml);
  EXPECT_EQ(ChooseAlgorithm(indexed, Q("//title")), Algorithm::kPathStack);
  EXPECT_EQ(ChooseAlgorithm(indexed, Q("//article/title")),
            Algorithm::kPathStack);
  EXPECT_EQ(ChooseAlgorithm(indexed, Q("//dblp//book//title")),
            Algorithm::kPathStack);
}

TEST(ChooseAlgorithmBoundaryTest, ExactlyAtThresholdPicksTwigStack) {
  // leaf 60 / total 100 = 0.6: not strictly below the threshold.
  auto indexed = ThresholdDoc(/*num_a=*/40);
  SelectivityEstimate estimate = EstimateSelectivity(indexed, Q("//a[b][c]"));
  ASSERT_EQ(estimate.total_stream_size, 100);
  ASSERT_EQ(estimate.leaf_stream_size, 60);
  EXPECT_EQ(ChooseAlgorithm(indexed, Q("//a[b][c]")), Algorithm::kTwigStack);
}

TEST(ChooseAlgorithmBoundaryTest, JustBelowThresholdPicksTJFast) {
  // leaf 60 / total 101 < 0.6: the internal stream is now big enough
  // that scanning leaves only pays for the label decodes.
  auto indexed = ThresholdDoc(/*num_a=*/41);
  SelectivityEstimate estimate = EstimateSelectivity(indexed, Q("//a[b][c]"));
  ASSERT_EQ(estimate.total_stream_size, 101);
  ASSERT_EQ(estimate.leaf_stream_size, 60);
  EXPECT_EQ(ChooseAlgorithm(indexed, Q("//a[b][c]")), Algorithm::kTJFast);
}

TEST(ChooseAlgorithmBoundaryTest, PlannerAgreesWithChooseAlgorithm) {
  // kAuto resolution inside the planner must stay in lock-step with
  // ChooseAlgorithm — it is the single source of truth.
  for (int num_a : {40, 41}) {
    auto indexed = ThresholdDoc(num_a);
    TwigQuery query = Q("//a[b][c]");
    auto plan = plan::Planner(indexed).Plan(query);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    EXPECT_EQ(plan->algorithm, ChooseAlgorithm(indexed, query))
        << "num_a=" << num_a;
  }
}

// ------------------------------------------------------- plan shapes

int CountOperators(const plan::PhysicalPlan& plan, plan::OperatorKind kind) {
  int count = 0;
  for (const plan::OperatorNode& op : plan.ops) {
    if (op.kind == kind) ++count;
  }
  return count;
}

TEST(PlannerTest, TJFastScansLeafStreamsOnly) {
  auto indexed = ThresholdDoc(/*num_a=*/41);
  auto plan = plan::Planner(indexed).Plan(Q("//a[b][c]"));
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->algorithm, Algorithm::kTJFast);
  // //a[b][c] has two leaves (b, c); the internal node a has no scan.
  EXPECT_EQ(CountOperators(*plan, plan::OperatorKind::kStreamScan), 2);
  EXPECT_EQ(CountOperators(*plan, plan::OperatorKind::kTJFastJoin), 1);
  EXPECT_EQ(CountOperators(*plan, plan::OperatorKind::kMergeExpand), 1);
}

TEST(PlannerTest, TwigStackScansEveryQueryNode) {
  auto indexed = ThresholdDoc(/*num_a=*/40);
  auto plan = plan::Planner(indexed).Plan(Q("//a[b][c]"));
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->algorithm, Algorithm::kTwigStack);
  EXPECT_EQ(CountOperators(*plan, plan::OperatorKind::kStreamScan), 3);
  EXPECT_EQ(CountOperators(*plan, plan::OperatorKind::kTwigStackJoin), 1);
  EXPECT_EQ(CountOperators(*plan, plan::OperatorKind::kMergeExpand), 1);
}

TEST(PlannerTest, SchemaPruneHintWrapsEveryScan) {
  auto indexed = MustIndex(kBibXml);
  plan::PlannerHints hints;
  hints.schema_prune_streams = true;
  auto plan = plan::Planner(indexed).Plan(Q("//article[author]/title"), hints);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->schema_prune);
  EXPECT_EQ(CountOperators(*plan, plan::OperatorKind::kSchemaPrune),
            CountOperators(*plan, plan::OperatorKind::kStreamScan));
}

TEST(PlannerTest, ForcedAlgorithmIsHonored) {
  auto indexed = MustIndex(kBibXml);
  plan::PlannerHints hints;
  hints.algorithm = Algorithm::kStructuralJoin;
  auto plan = plan::Planner(indexed).Plan(Q("//article[author]/title"), hints);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->algorithm, Algorithm::kStructuralJoin);
  EXPECT_EQ(plan->choice_reason, "forced by caller hint");
  EXPECT_EQ(CountOperators(*plan, plan::OperatorKind::kBinaryStructuralJoin),
            1);
  // No holistic phase-2 for the binary join.
  EXPECT_EQ(CountOperators(*plan, plan::OperatorKind::kMergeExpand), 0);
}

TEST(PlannerTest, OrderedQueryPlansAnOrderFilter) {
  auto indexed = MustIndex(kBibXml);
  auto plan = plan::Planner(indexed).Plan(Q("//article[ordered][author][title]"));
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(CountOperators(*plan, plan::OperatorKind::kOrderFilter), 1);
  // Holistic algorithm -> integrated order checking resolves on.
  EXPECT_TRUE(plan->integrate_order);
}

TEST(PlannerTest, UnorderedQueryHasNoOrderFilter) {
  auto indexed = MustIndex(kBibXml);
  auto plan = plan::Planner(indexed).Plan(Q("//article[author]/title"));
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(CountOperators(*plan, plan::OperatorKind::kOrderFilter), 0);
  EXPECT_FALSE(plan->integrate_order);
}

TEST(PlannerTest, ApplyOrderOffDropsTheFilter) {
  auto indexed = MustIndex(kBibXml);
  plan::PlannerHints hints;
  hints.apply_order = false;
  auto plan =
      plan::Planner(indexed).Plan(Q("//article[ordered][author][title]"), hints);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(CountOperators(*plan, plan::OperatorKind::kOrderFilter), 0);
  EXPECT_FALSE(plan->integrate_order);
}

TEST(PlannerTest, EveryPlanEndsInOutputSort) {
  auto indexed = MustIndex(kBibXml);
  for (std::string_view text :
       {"//title", "//article[author]/title", "//book[chapter//title]/year"}) {
    auto plan = plan::Planner(indexed).Plan(Q(text));
    ASSERT_TRUE(plan.ok()) << text;
    ASSERT_FALSE(plan->ops.empty());
    EXPECT_EQ(plan->ops.back().kind, plan::OperatorKind::kOutputSort) << text;
    // Children always precede parents; the root is the last operator.
    for (size_t i = 0; i < plan->ops.size(); ++i) {
      for (int child : plan->ops[i].children) {
        EXPECT_LT(child, static_cast<int>(i)) << text;
      }
    }
  }
}

TEST(PlannerTest, EstimatesArePopulated) {
  auto indexed = MustIndex(kBibXml);
  auto plan = plan::Planner(indexed).Plan(Q("//article[author]/title"));
  ASSERT_TRUE(plan.ok());
  for (const plan::OperatorNode& op : plan->ops) {
    EXPECT_GE(op.estimated_rows, 0.0);
    EXPECT_GE(op.estimated_cost, 0.0);
  }
  int scan = plan->FindOperator(plan::OperatorKind::kStreamScan);
  ASSERT_GE(scan, 0);
  EXPECT_GT(plan->ops[static_cast<size_t>(scan)].estimated_rows, 0.0);
}

TEST(PlannerTest, InvalidQueryFailsToPlan) {
  auto indexed = MustIndex(kBibXml);
  TwigQuery empty;
  EXPECT_FALSE(plan::Planner(indexed).Plan(empty).ok());
}

// --------------------------------------------------- plan equivalence

/// Every physical plan the planner can emit must return exactly the
/// brute-force match set — the refactor-safety property that lets
/// Evaluate() delegate to the planner.
class PlanEquivalenceTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(PlanEquivalenceTest, AllPlansReturnTheOracleMatchSet) {
  const std::vector<std::string> corpora = {std::string(kBibXml),
                                            std::string(kNestedXml)};
  const std::vector<std::vector<std::string>> suites = {
      {"//author", "//article/title", "//book//title",
       "//article[author]/title", "//article[author][year]/title",
       R"(//article[year[="2012"]]/title)", "//book[chapter//title]/year",
       "//article/@key", "//*/title", "//nonexistent",
       "//article[ordered][author][title]",
       "//article[ordered][title][author]"},
      {"//s//t", "//s/s/t", "//s[t]//u", "//s[//t][//u]", "//r[t]//s[t]"}};

  for (size_t c = 0; c < corpora.size(); ++c) {
    auto indexed = MustIndex(corpora[c]);
    for (const std::string& text : suites[c]) {
      TwigQuery query = Q(text);
      if (GetParam() == Algorithm::kPathStack && !query.IsPath()) continue;
      std::vector<Match> expected = BruteForceMatches(indexed, query);
      // Sweep the hint flags that change the plan's shape but must never
      // change its answers.
      for (bool prune : {false, true}) {
        for (bool reorder : {false, true}) {
          for (bool integrate : {false, true}) {
            plan::PlannerHints hints;
            hints.algorithm = GetParam();
            hints.schema_prune_streams = prune;
            hints.reorder_binary_joins = reorder;
            hints.integrate_order = integrate;
            auto plan = plan::Planner(indexed).Plan(query, hints);
            ASSERT_TRUE(plan.ok()) << text;
            auto result = plan::ExecutePlan(indexed, &*plan);
            ASSERT_TRUE(result.ok())
                << text << ": " << result.status().ToString();
            EXPECT_EQ(result->matches, expected)
                << "query=" << text << " algorithm=" << AlgorithmName(GetParam())
                << " prune=" << prune << " reorder=" << reorder
                << " integrate=" << integrate;
          }
        }
      }
    }
  }
}

TEST_P(PlanEquivalenceTest, PlanExecutionMatchesEvaluate) {
  // Evaluate() is a shim over the planner, but pin the equivalence
  // end-to-end anyway: same matches, same headline counters.
  auto indexed = MustIndex(kBibXml);
  for (std::string_view text :
       {"//article[author]/title", "//book//title",
        "//article[ordered][author][title]"}) {
    TwigQuery query = Q(text);
    if (GetParam() == Algorithm::kPathStack && !query.IsPath()) continue;
    EvalOptions options;
    options.algorithm = GetParam();
    auto via_evaluate = Evaluate(indexed, query, options);
    ASSERT_TRUE(via_evaluate.ok()) << text;

    auto plan = plan::Planner(indexed).Plan(query, plan::HintsFrom(options));
    ASSERT_TRUE(plan.ok()) << text;
    auto via_plan = plan::ExecutePlan(indexed, &*plan);
    ASSERT_TRUE(via_plan.ok()) << text;

    EXPECT_EQ(via_plan->matches, via_evaluate->matches) << text;
    EXPECT_EQ(via_plan->stats.candidates_scanned,
              via_evaluate->stats.candidates_scanned)
        << text;
    EXPECT_EQ(via_plan->stats.matches, via_evaluate->stats.matches) << text;
  }
}

TEST_P(PlanEquivalenceTest, CompressedMultiBlockCorpusMatchesOracle) {
  // A generated corpus large enough that every frequent tag stream spans
  // multiple posting blocks (>128 entries), so cursor seeks actually
  // skip blocks: the sweep pins join x prune x reorder on the
  // block-compressed index against the brute-force oracle.
  index::IndexedDocument indexed(
      datagen::GenerateDblpWithApproxNodes(41, 5000));
  ASSERT_GT(
      indexed.tag_streams().blocks(indexed.document().FindTag("author"))
          .num_blocks(),
      1u);
  for (std::string_view text :
       {"//article/author", "//article[year]/title",
        "//inproceedings[author][title]/year", "//article[ordered][author][title]",
        "//*[author]/title"}) {
    TwigQuery query = Q(text);
    if (GetParam() == Algorithm::kPathStack && !query.IsPath()) continue;
    std::vector<Match> expected = BruteForceMatches(indexed, query);
    for (bool prune : {false, true}) {
      for (bool reorder : {false, true}) {
        plan::PlannerHints hints;
        hints.algorithm = GetParam();
        hints.schema_prune_streams = prune;
        hints.reorder_binary_joins = reorder;
        auto plan = plan::Planner(indexed).Plan(query, hints);
        ASSERT_TRUE(plan.ok()) << text;
        auto result = plan::ExecutePlan(indexed, &*plan);
        ASSERT_TRUE(result.ok()) << text << ": "
                                 << result.status().ToString();
        EXPECT_EQ(result->matches, expected)
            << "query=" << text
            << " algorithm=" << AlgorithmName(GetParam())
            << " prune=" << prune << " reorder=" << reorder;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, PlanEquivalenceTest,
    ::testing::Values(Algorithm::kAuto, Algorithm::kStructuralJoin,
                      Algorithm::kPathStack, Algorithm::kTwigStack,
                      Algorithm::kTJFast),
    [](const ::testing::TestParamInfo<Algorithm>& info) {
      std::string name(AlgorithmName(info.param));
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

// ------------------------------------------------------------ EXPLAIN

TEST(ExplainPlanTest, PathQueryRendersEstimatesAndActuals) {
  auto indexed = MustIndex(kBibXml);
  auto text = plan::ExplainQuery(indexed, Q("//article/title"));
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("pathstack"), std::string::npos) << *text;
  EXPECT_NE(text->find("stream-scan"), std::string::npos) << *text;
  EXPECT_NE(text->find("est rows="), std::string::npos) << *text;
  EXPECT_NE(text->find("actual rows="), std::string::npos) << *text;
  EXPECT_NE(text->find("estimated matches"), std::string::npos) << *text;
}

TEST(ExplainPlanTest, TwigQueryRendersTheOperatorTree) {
  auto indexed = MustIndex(kBibXml);
  auto text = plan::ExplainQuery(indexed, Q("//article[author][year]/title"));
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("output-sort"), std::string::npos) << *text;
  EXPECT_NE(text->find("merge-expand"), std::string::npos) << *text;
  EXPECT_NE(text->find("stream-scan"), std::string::npos) << *text;
  EXPECT_NE(text->find("est rows="), std::string::npos) << *text;
  EXPECT_NE(text->find("actual rows="), std::string::npos) << *text;
}

TEST(ExplainPlanTest, OrderSensitiveQueryShowsTheOrderFilter) {
  auto indexed = MustIndex(kBibXml);
  auto text =
      plan::ExplainQuery(indexed, Q("//article[ordered][author][title]"));
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("order-filter"), std::string::npos) << *text;
  EXPECT_NE(text->find("actual rows="), std::string::npos) << *text;
}

TEST(ExplainPlanTest, DescribeWithoutActualsOmitsThem) {
  auto indexed = MustIndex(kBibXml);
  auto plan = plan::Planner(indexed).Plan(Q("//article[author]/title"));
  ASSERT_TRUE(plan.ok());
  std::string text = plan::DescribePlan(*plan, /*include_actuals=*/false);
  EXPECT_NE(text.find("est rows="), std::string::npos) << text;
  EXPECT_EQ(text.find("actual rows="), std::string::npos) << text;
}

}  // namespace
}  // namespace lotusx::twig
