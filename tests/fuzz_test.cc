// Robustness ("fuzz-lite") tests: randomly mutated inputs must produce
// clean Status errors — never crashes, hangs, or CHECK failures — across
// the XML parser, the index decoder, the query parser, and the protocol
// interpreter. Deterministic seeds; each seed is an independent case.

#include <gtest/gtest.h>

#include "common/random.h"
#include "datagen/datagen.h"
#include "index/indexed_document.h"
#include "session/protocol.h"
#include "session/session.h"
#include "tests/test_util.h"
#include "twig/evaluator.h"
#include "twig/query_parser.h"
#include "xml/dom_builder.h"
#include "xml/writer.h"

namespace lotusx {
namespace {

std::string Mutate(Random& random, std::string input) {
  int mutations = 1 + static_cast<int>(random.NextBounded(6));
  for (int m = 0; m < mutations && !input.empty(); ++m) {
    size_t pos = random.NextBounded(input.size());
    switch (random.NextBounded(4)) {
      case 0:  // flip a byte
        input[pos] = static_cast<char>(random.NextBounded(256));
        break;
      case 1:  // delete a byte
        input.erase(pos, 1);
        break;
      case 2:  // duplicate a chunk
        input.insert(pos, input.substr(pos, random.NextBounded(8) + 1));
        break;
      case 3:  // truncate
        input.resize(pos);
        break;
    }
  }
  return input;
}

class FuzzSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzSweep, MutatedXmlNeverCrashesParser) {
  Random random(GetParam() * 1009 + 1);
  datagen::DblpOptions options;
  options.num_publications = 5;
  options.seed = GetParam();
  std::string valid = xml::WriteXml(datagen::GenerateDblp(options));
  for (int i = 0; i < 60; ++i) {
    std::string mutated = Mutate(random, valid);
    auto result = xml::ParseDocument(mutated);
    // Either it parses (mutation kept well-formedness) or it reports a
    // clean error; both are fine. Reaching the next loop iteration is
    // the assertion.
    if (result.ok()) {
      EXPECT_GT(result->num_nodes(), 0);
    } else {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
}

TEST_P(FuzzSweep, MutatedIndexImageNeverCrashesLoader) {
  Random random(GetParam() * 2003 + 7);
  datagen::StoreOptions options;
  options.num_products = 8;
  options.seed = GetParam();
  index::IndexedDocument indexed(datagen::GenerateStore(options));
  std::string path = ::testing::TempDir() + "/lotusx_fuzz_" +
                     std::to_string(GetParam()) + ".ltsx";
  ASSERT_TRUE(indexed.SaveTo(path).ok());
  std::string image;
  ASSERT_TRUE(ReadFileToString(path, &image).ok());
  for (int i = 0; i < 40; ++i) {
    std::string mutated = Mutate(random, image);
    ASSERT_TRUE(WriteStringToFile(path, mutated).ok());
    auto loaded = index::IndexedDocument::LoadFrom(path);
    if (!loaded.ok()) {
      EXPECT_FALSE(loaded.status().message().empty());
    }
  }
  std::remove(path.c_str());
}

TEST_P(FuzzSweep, RandomQueryStringsNeverCrashParser) {
  Random random(GetParam() * 31337 + 3);
  const std::string alphabet = "ab*/[]\"=~!@ \\.1ordered";
  for (int i = 0; i < 200; ++i) {
    std::string text;
    size_t length = random.NextBounded(30);
    for (size_t c = 0; c < length; ++c) {
      text += alphabet[random.NextBounded(alphabet.size())];
    }
    auto result = twig::ParseQuery(text);
    if (result.ok()) {
      EXPECT_TRUE(result->Validate().ok()) << text;
    }
  }
}

TEST_P(FuzzSweep, MutatedValidQueriesNeverCrashParser) {
  Random random(GetParam() * 17 + 11);
  const std::vector<std::string> seeds = {
      "//book[author][//year]/title!",
      R"(//a[ordered][b[="x y"]]/c[~"k"])",
      "//*/@key",
  };
  for (int i = 0; i < 150; ++i) {
    std::string mutated =
        Mutate(random, seeds[random.NextBounded(seeds.size())]);
    auto result = twig::ParseQuery(mutated);
    if (result.ok()) {
      // Whatever parsed must re-parse from its own rendering.
      EXPECT_TRUE(twig::ParseQuery(result->ToString()).ok())
          << mutated << " -> " << result->ToString();
    }
  }
}

TEST_P(FuzzSweep, RandomProtocolLinesNeverCrashInterpreter) {
  Random random(GetParam() * 77 + 5);
  index::IndexedDocument indexed = testing::MustIndex(
      "<r><a>x</a><b><c>y</c></b></r>");
  session::Session session(indexed);
  session::ProtocolInterpreter interpreter(&session);
  const std::vector<std::string> verbs = {
      "ADD",  "TAG",    "EDGE",       "TYPE", "TYPEVAL", "VALUE",
      "RUN",  "QUERY",  "ORDERED",    "OUTPUT", "MOVE",  "REMOVE",
      "UNDO", "CHECKPOINT", "SHOW",   "RESET",  "HELP",  "BOGUS"};
  for (int i = 0; i < 300; ++i) {
    std::string line = verbs[random.NextBounded(verbs.size())];
    int args = static_cast<int>(random.NextBounded(5));
    for (int a = 0; a < args; ++a) {
      switch (random.NextBounded(4)) {
        case 0:
          line += " " + std::to_string(random.NextInRange(-3, 9));
          break;
        case 1:
          line += " " + random.NextWord(1, 5);
          break;
        case 2:
          line += random.NextBool(0.5) ? " /" : " //";
          break;
        case 3:
          line += random.NextBool(0.5) ? " =" : " ~";
          break;
      }
    }
    auto result = interpreter.Execute(line);
    if (!result.ok()) {
      EXPECT_FALSE(result.status().message().empty()) << line;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Range<uint64_t>(0, 8));

// ---------------------------------------------------------------------
// Sanitizer-driven stress suite: full-pipeline round trips on randomly
// generated documents. Each case runs parse → index → invariant audit →
// twig evaluation (all algorithms, exercising the holistic stack
// discipline) → index serialization → reload → re-audit. Under the asan
// preset these tests double as memory-safety probes; the invariant audit
// (ValidateInvariants) makes silent index corruption loud.

/// Rotates across the four data generators so every family of document
/// shapes (bibliographic, catalog, auction, deep-recursive) is stressed.
xml::Document GenerateRandomDocument(uint64_t seed) {
  switch (seed % 4) {
    case 0: {
      datagen::DblpOptions options;
      options.num_publications = 12;
      options.seed = seed;
      return datagen::GenerateDblp(options);
    }
    case 1: {
      datagen::StoreOptions options;
      options.num_products = 15;
      options.seed = seed;
      return datagen::GenerateStore(options);
    }
    case 2:
      return datagen::GenerateXmarkWithApproxNodes(seed, 300);
    default:
      return datagen::GenerateTreebankWithApproxNodes(seed, 250);
  }
}

/// A random twig query over tags that actually occur in `document`, so
/// streams are non-trivially populated. Occasionally uses wildcards and
/// tags that do not occur (via NextWord) to cover empty-stream paths.
std::string RandomQueryText(Random& random, const xml::Document& document) {
  std::vector<std::string> tags;
  for (xml::TagId t = 0; t < document.num_tags(); ++t) {
    tags.emplace_back(document.tag_name(t));
  }
  auto pick = [&]() -> std::string {
    uint64_t roll = random.NextBounded(10);
    if (roll == 0) return "*";
    if (roll == 1) return random.NextWord(2, 5);  // likely absent
    return tags[random.NextBounded(tags.size())];
  };
  std::string text;
  int steps = 1 + static_cast<int>(random.NextBounded(3));
  for (int s = 0; s < steps; ++s) {
    text += random.NextBool(0.75) ? "//" : "/";
    text += pick();
  }
  if (random.NextBool(0.5)) text += "[" + pick() + "]";
  if (random.NextBool(0.25)) text += "[//" + pick() + "]";
  return text;
}

std::vector<twig::Match> SortedMatches(std::vector<twig::Match> matches) {
  std::sort(matches.begin(), matches.end());
  return matches;
}

class StressSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StressSweep, IndexRoundTripUpholdsInvariants) {
  uint64_t seed = GetParam();
  // Serialize the generated document to XML and push it through the real
  // parser, so the parser itself is part of the audited pipeline.
  std::string xml_text = xml::WriteXml(GenerateRandomDocument(seed));
  auto parsed = xml::ParseDocument(xml_text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(parsed->ValidateInvariants().ok())
      << parsed->ValidateInvariants().ToString();

  index::IndexedDocument indexed(std::move(*parsed));
  Status audit = indexed.ValidateInvariants();
  ASSERT_TRUE(audit.ok()) << audit.ToString();

  std::string path = ::testing::TempDir() + "/lotusx_stress_" +
                     std::to_string(seed) + ".ltsx";
  ASSERT_TRUE(indexed.SaveTo(path).ok());
  auto loaded = index::IndexedDocument::LoadFrom(path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  audit = loaded->ValidateInvariants();
  ASSERT_TRUE(audit.ok()) << audit.ToString();
  EXPECT_EQ(loaded->document().num_nodes(), indexed.document().num_nodes());
  EXPECT_EQ(loaded->document().num_tags(), indexed.document().num_tags());
}

TEST_P(StressSweep, TwigAlgorithmsAgreeUnderStress) {
  uint64_t seed = GetParam();
  Random random(seed * 7919 + 13);
  index::IndexedDocument indexed(GenerateRandomDocument(seed));
  ASSERT_TRUE(indexed.ValidateInvariants().ok());

  constexpr twig::Algorithm kAlgorithms[] = {
      twig::Algorithm::kStructuralJoin, twig::Algorithm::kTwigStack,
      twig::Algorithm::kTJFast, twig::Algorithm::kPathStack};
  for (int i = 0; i < 25; ++i) {
    std::string text = RandomQueryText(random, indexed.document());
    auto query = twig::ParseQuery(text);
    if (!query.ok() || !query->Validate().ok()) continue;
    std::vector<twig::Match> expected =
        testing::BruteForceMatches(indexed, *query);
    for (twig::Algorithm algorithm : kAlgorithms) {
      if (algorithm == twig::Algorithm::kPathStack && !query->IsPath()) {
        continue;
      }
      twig::EvalOptions options;
      options.algorithm = algorithm;
      auto result = twig::Evaluate(indexed, *query, options);
      ASSERT_TRUE(result.ok())
          << text << " via " << twig::AlgorithmName(algorithm) << ": "
          << result.status().ToString();
      EXPECT_EQ(SortedMatches(std::move(result->matches)), expected)
          << text << " via " << twig::AlgorithmName(algorithm);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StressSweep,
                         ::testing::Range<uint64_t>(0, 8));

}  // namespace
}  // namespace lotusx
