// Robustness ("fuzz-lite") tests: randomly mutated inputs must produce
// clean Status errors — never crashes, hangs, or CHECK failures — across
// the XML parser, the index decoder, the query parser, and the protocol
// interpreter. Deterministic seeds; each seed is an independent case.

#include <gtest/gtest.h>

#include "common/random.h"
#include "datagen/datagen.h"
#include "index/indexed_document.h"
#include "session/protocol.h"
#include "session/session.h"
#include "tests/test_util.h"
#include "twig/query_parser.h"
#include "xml/dom_builder.h"
#include "xml/writer.h"

namespace lotusx {
namespace {

std::string Mutate(Random& random, std::string input) {
  int mutations = 1 + static_cast<int>(random.NextBounded(6));
  for (int m = 0; m < mutations && !input.empty(); ++m) {
    size_t pos = random.NextBounded(input.size());
    switch (random.NextBounded(4)) {
      case 0:  // flip a byte
        input[pos] = static_cast<char>(random.NextBounded(256));
        break;
      case 1:  // delete a byte
        input.erase(pos, 1);
        break;
      case 2:  // duplicate a chunk
        input.insert(pos, input.substr(pos, random.NextBounded(8) + 1));
        break;
      case 3:  // truncate
        input.resize(pos);
        break;
    }
  }
  return input;
}

class FuzzSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzSweep, MutatedXmlNeverCrashesParser) {
  Random random(GetParam() * 1009 + 1);
  datagen::DblpOptions options;
  options.num_publications = 5;
  options.seed = GetParam();
  std::string valid = xml::WriteXml(datagen::GenerateDblp(options));
  for (int i = 0; i < 60; ++i) {
    std::string mutated = Mutate(random, valid);
    auto result = xml::ParseDocument(mutated);
    // Either it parses (mutation kept well-formedness) or it reports a
    // clean error; both are fine. Reaching the next loop iteration is
    // the assertion.
    if (result.ok()) {
      EXPECT_GT(result->num_nodes(), 0);
    } else {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
}

TEST_P(FuzzSweep, MutatedIndexImageNeverCrashesLoader) {
  Random random(GetParam() * 2003 + 7);
  datagen::StoreOptions options;
  options.num_products = 8;
  options.seed = GetParam();
  index::IndexedDocument indexed(datagen::GenerateStore(options));
  std::string path = ::testing::TempDir() + "/lotusx_fuzz_" +
                     std::to_string(GetParam()) + ".ltsx";
  ASSERT_TRUE(indexed.SaveTo(path).ok());
  std::string image;
  ASSERT_TRUE(ReadFileToString(path, &image).ok());
  for (int i = 0; i < 40; ++i) {
    std::string mutated = Mutate(random, image);
    ASSERT_TRUE(WriteStringToFile(path, mutated).ok());
    auto loaded = index::IndexedDocument::LoadFrom(path);
    if (!loaded.ok()) {
      EXPECT_FALSE(loaded.status().message().empty());
    }
  }
  std::remove(path.c_str());
}

TEST_P(FuzzSweep, RandomQueryStringsNeverCrashParser) {
  Random random(GetParam() * 31337 + 3);
  const std::string alphabet = "ab*/[]\"=~!@ \\.1ordered";
  for (int i = 0; i < 200; ++i) {
    std::string text;
    size_t length = random.NextBounded(30);
    for (size_t c = 0; c < length; ++c) {
      text += alphabet[random.NextBounded(alphabet.size())];
    }
    auto result = twig::ParseQuery(text);
    if (result.ok()) {
      EXPECT_TRUE(result->Validate().ok()) << text;
    }
  }
}

TEST_P(FuzzSweep, MutatedValidQueriesNeverCrashParser) {
  Random random(GetParam() * 17 + 11);
  const std::vector<std::string> seeds = {
      "//book[author][//year]/title!",
      R"(//a[ordered][b[="x y"]]/c[~"k"])",
      "//*/@key",
  };
  for (int i = 0; i < 150; ++i) {
    std::string mutated =
        Mutate(random, seeds[random.NextBounded(seeds.size())]);
    auto result = twig::ParseQuery(mutated);
    if (result.ok()) {
      // Whatever parsed must re-parse from its own rendering.
      EXPECT_TRUE(twig::ParseQuery(result->ToString()).ok())
          << mutated << " -> " << result->ToString();
    }
  }
}

TEST_P(FuzzSweep, RandomProtocolLinesNeverCrashInterpreter) {
  Random random(GetParam() * 77 + 5);
  index::IndexedDocument indexed = testing::MustIndex(
      "<r><a>x</a><b><c>y</c></b></r>");
  session::Session session(indexed);
  session::ProtocolInterpreter interpreter(&session);
  const std::vector<std::string> verbs = {
      "ADD",  "TAG",    "EDGE",       "TYPE", "TYPEVAL", "VALUE",
      "RUN",  "QUERY",  "ORDERED",    "OUTPUT", "MOVE",  "REMOVE",
      "UNDO", "CHECKPOINT", "SHOW",   "RESET",  "HELP",  "BOGUS"};
  for (int i = 0; i < 300; ++i) {
    std::string line = verbs[random.NextBounded(verbs.size())];
    int args = static_cast<int>(random.NextBounded(5));
    for (int a = 0; a < args; ++a) {
      switch (random.NextBounded(4)) {
        case 0:
          line += " " + std::to_string(random.NextInRange(-3, 9));
          break;
        case 1:
          line += " " + random.NextWord(1, 5);
          break;
        case 2:
          line += random.NextBool(0.5) ? " /" : " //";
          break;
        case 3:
          line += random.NextBool(0.5) ? " =" : " ~";
          break;
      }
    }
    auto result = interpreter.Execute(line);
    if (!result.ok()) {
      EXPECT_FALSE(result.status().message().empty()) << line;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Range<uint64_t>(0, 8));

}  // namespace
}  // namespace lotusx
