#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/sync.h"
#include "common/thread_pool.h"
#include "lotusx/engine.h"
#include "lotusx/query_cache.h"
#include "twig/query_parser.h"

namespace lotusx {
namespace {

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.Submit([&counter] { ++counter; }));
  }
  pool.Shutdown();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, TrySubmitRespectsQueueBound) {
  ThreadPool pool(1, /*queue_capacity=*/2);
  Mutex mu;
  CondVar cv;
  bool release = false;
  std::atomic<bool> started{false};
  std::atomic<int> ran{0};
  // Park the single worker so queued tasks stay queued.
  ASSERT_TRUE(pool.Submit([&] {
    started = true;
    MutexLock lock(mu);
    while (!release) cv.Wait(mu);
    ++ran;
  }));
  while (!started) std::this_thread::yield();
  // Worker is busy and the queue is empty: exactly `queue_capacity` more
  // tasks fit.
  EXPECT_TRUE(pool.TrySubmit([&ran] { ++ran; }));
  EXPECT_TRUE(pool.TrySubmit([&ran] { ++ran; }));
  EXPECT_FALSE(pool.TrySubmit([&ran] { ++ran; }));
  {
    MutexLock lock(mu);
    release = true;
  }
  cv.SignalAll();
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  ThreadPool pool(1, /*queue_capacity=*/16);
  Mutex mu;
  CondVar cv;
  bool release = false;
  std::atomic<bool> started{false};
  std::atomic<int> ran{0};
  ASSERT_TRUE(pool.Submit([&] {
    started = true;
    MutexLock lock(mu);
    while (!release) cv.Wait(mu);
  }));
  while (!started) std::this_thread::yield();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(pool.TrySubmit([&ran] { ++ran; }));
  }
  {
    MutexLock lock(mu);
    release = true;
  }
  cv.SignalAll();
  pool.Shutdown();  // graceful: the 5 queued tasks must still run
  EXPECT_EQ(ran.load(), 5);
}

TEST(ThreadPoolTest, SubmitAfterShutdownFails) {
  ThreadPool pool(2);
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
  EXPECT_FALSE(pool.TrySubmit([] {}));
  pool.Shutdown();  // idempotent
}

TEST(ThreadPoolTest, ConcurrentShutdownFromTwoThreads) {
  // Regression: Shutdown() raced from two threads must (a) not join a
  // worker twice, and (b) not let either caller return while workers
  // are still draining the queue. The join_mu_/joined_ protocol
  // (LOTUSX_EXCLUDES(mu_, join_mu_) in thread_pool.h) elects one
  // joiner; the loser blocks until the winner is done.
  for (int round = 0; round < 8; ++round) {
    ThreadPool pool(2, /*queue_capacity=*/64);
    Mutex mu;
    CondVar cv;
    bool release = false;
    std::atomic<int> ran{0};
    std::atomic<bool> parked{false};
    // Park one worker so the queue is provably non-empty when the two
    // Shutdown() calls race the drain.
    ASSERT_TRUE(pool.Submit([&] {
      parked = true;
      MutexLock lock(mu);
      while (!release) cv.Wait(mu);
    }));
    while (!parked) std::this_thread::yield();
    for (int i = 0; i < 32; ++i) {
      ASSERT_TRUE(pool.Submit([&ran] { ++ran; }));
    }
    std::thread a([&pool] { pool.Shutdown(); });
    std::thread b([&pool] { pool.Shutdown(); });
    {
      MutexLock lock(mu);
      release = true;
    }
    cv.SignalAll();
    a.join();
    b.join();
    // Both Shutdown() calls returned: every queued task has run and the
    // queue is empty — graceful drain happened exactly once.
    EXPECT_EQ(ran.load(), 32);
    EXPECT_EQ(pool.queue_depth(), 0u);
    EXPECT_FALSE(pool.Submit([] {}));
    pool.Shutdown();  // still idempotent after the race
  }
}

TEST(ThreadPoolTest, ConcurrentProducers) {
  ThreadPool pool(2, /*queue_capacity=*/4);  // small queue: back-pressure
  std::atomic<int> counter{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&pool, &counter] {
      for (int i = 0; i < 50; ++i) {
        ASSERT_TRUE(pool.Submit([&counter] { ++counter; }));
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  pool.Shutdown();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
}

TEST(ThreadPoolTest, MetricsTrackQueueDepthAndTaskCounts) {
  metrics::MetricsSnapshot before = metrics::Registry::Default().Snapshot();
  {
    ThreadPool pool(1);
    Mutex mu;
    CondVar cv;
    bool release = false;
    std::atomic<bool> started{false};
    // Park the single worker so submitted tasks pile up in the queue.
    ASSERT_TRUE(pool.Submit([&] {
      started = true;
      MutexLock lock(mu);
      while (!release) cv.Wait(mu);
    }));
    while (!started) std::this_thread::yield();
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(pool.Submit([] {}));
    }
    EXPECT_EQ(pool.queue_depth(), 3u);
    metrics::MetricsSnapshot queued = metrics::Registry::Default().Snapshot();
    EXPECT_EQ(queued.GaugeValueOr("lotusx_threadpool_queue_depth", -1), 3);
    {
      MutexLock lock(mu);
      release = true;
    }
    cv.SignalAll();
    pool.Shutdown();
    EXPECT_EQ(pool.queue_depth(), 0u);
  }
  metrics::MetricsSnapshot after = metrics::Registry::Default().Snapshot();
  EXPECT_EQ(after.CounterTotal("lotusx_threadpool_tasks_total"),
            before.CounterTotal("lotusx_threadpool_tasks_total") + 4);
  EXPECT_EQ(after.HistogramCountTotal("lotusx_threadpool_task_run_usec"),
            before.HistogramCountTotal("lotusx_threadpool_task_run_usec") +
                4);
  EXPECT_EQ(after.HistogramCountTotal("lotusx_threadpool_task_wait_usec"),
            before.HistogramCountTotal("lotusx_threadpool_task_wait_usec") +
                4);
  EXPECT_EQ(after.GaugeValueOr("lotusx_threadpool_queue_depth", -1), 0);
}

// ------------------------------------------- ShardedLruCache concurrency

TEST(ShardedLruCacheTest, ConcurrentInsertLookup) {
  ShardedLruCache<std::string> cache(64, /*num_shards=*/8);
  constexpr int kThreads = 4;
  constexpr int kOps = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOps; ++i) {
        std::string key = "key" + std::to_string((t * 7 + i) % 100);
        if (i % 3 == 0) {
          cache.Insert(key, key + "-value");
        } else {
          std::optional<std::string> value = cache.Lookup(key);
          // Lookup returned a copy: it stays valid whatever other
          // threads evict, and must be the value inserted for that key.
          if (value.has_value()) {
            EXPECT_EQ(*value, key + "-value");
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  // 667 of every 2000 iterations insert; the rest look up.
  const uint64_t lookups = static_cast<uint64_t>(kThreads) * (kOps - 667);
  EXPECT_EQ(cache.hits() + cache.misses(), lookups);
  EXPECT_LE(cache.size(), cache.capacity());
}

// --------------------------------------------------- Shared-Engine stress

constexpr std::string_view kCatalogXml = R"(<store>
  <name>main store</name>
  <category>
    <name>books</name>
    <product sku="p1">
      <name>xml handbook</name>
      <brand>acme</brand>
      <price>30.00</price>
      <review><rating>5</rating><comment>great xml content</comment></review>
    </product>
    <product sku="p2">
      <name>twig poster</name>
      <brand>zeta</brand>
      <price>5.00</price>
    </product>
  </category>
  <category>
    <name>music</name>
    <album id="m1">
      <name>lotus songs</name>
      <artist>acme band</artist>
    </album>
  </category>
</store>)";

/// Everything observable about a SearchResult except timings.
std::string Signature(const SearchResult& result) {
  std::string sig = result.executed_query.ToString();
  sig += '#';
  for (const std::string& rewrite : result.rewrites_applied) {
    sig += rewrite + ';';
  }
  sig += '#' + std::to_string(result.rewrite_penalty) + '#';
  for (const ranking::RankedResult& hit : result.results) {
    sig += std::to_string(hit.output) + ':' + std::to_string(hit.score) + ',';
  }
  return sig;
}

twig::TwigQuery Q(std::string_view text) {
  auto parsed = twig::ParseQuery(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return std::move(parsed).value();
}

TEST(EngineConcurrencyTest, SharedEngineMixedWorkloadMatchesOracle) {
  auto engine = Engine::FromXmlText(kCatalogXml);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  engine->EnableResultCache(16);

  const std::vector<std::string> queries = {
      "//product/name",
      "//product[price]/brand",
      "//album/artist",
      "//category/name",
      "//product/artist",  // empty: exercises the rewriter
  };
  autocomplete::TagRequest tag_request;
  tag_request.anchor = 0;
  tag_request.axis = twig::Axis::kChild;
  const twig::TwigQuery tag_query = Q("//product");
  const twig::TwigQuery value_query = Q("//comment");

  // Single-threaded oracle over the same engine (cache already enabled:
  // hits must serve byte-identical answers).
  std::vector<std::string> oracle_sigs;
  for (const std::string& query : queries) {
    auto result = engine->Search(query);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    oracle_sigs.push_back(Signature(*result));
  }
  auto oracle_tags = engine->CompleteTag(tag_query, tag_request);
  ASSERT_TRUE(oracle_tags.ok());
  auto oracle_values = engine->CompleteValue(value_query, 0, "gr", 10);
  ASSERT_TRUE(oracle_values.ok());

  constexpr int kThreads = 4;
  constexpr int kIterations = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int iteration = 0; iteration < kIterations; ++iteration) {
        for (size_t q = 0; q < queries.size(); ++q) {
          auto result = engine->Search(queries[q]);
          ASSERT_TRUE(result.ok()) << result.status().ToString();
          EXPECT_EQ(Signature(*result), oracle_sigs[q]) << queries[q];
        }
        auto tags = engine->CompleteTag(tag_query, tag_request);
        ASSERT_TRUE(tags.ok());
        EXPECT_EQ(*tags, *oracle_tags);
        auto values = engine->CompleteValue(value_query, 0, "gr", 10);
        ASSERT_TRUE(values.ok());
        EXPECT_EQ(*values, *oracle_values);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Every lookup is accounted for, and the warm cache served hits.
  const uint64_t searches =
      queries.size() * (1 + kThreads * kIterations);
  EXPECT_EQ(engine->cache_hits() + engine->cache_misses(), searches);
  EXPECT_GT(engine->cache_hits(), 0u);
}

// ------------------------------------------------------------- Batch APIs

TEST(EngineBatchTest, SearchBatchMatchesSequentialOracle) {
  auto engine = Engine::FromXmlText(kCatalogXml);
  ASSERT_TRUE(engine.ok());
  std::vector<std::string> queries;
  for (int i = 0; i < 3; ++i) {
    queries.push_back("//product/name");
    queries.push_back("//category/name");
    queries.push_back("//album/artist");
    queries.push_back("//product[price]/brand");
  }
  queries.insert(queries.begin() + 5, "//[malformed");  // stays an error

  auto oracle = engine->SearchBatch(queries);  // pool == nullptr: inline
  ThreadPool pool(3);
  auto batched = engine->SearchBatch(queries, {}, &pool);
  ASSERT_EQ(batched.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(batched[i].ok(), oracle[i].ok()) << queries[i];
    if (batched[i].ok()) {
      EXPECT_EQ(Signature(*batched[i]), Signature(*oracle[i])) << queries[i];
    } else {
      EXPECT_EQ(batched[i].status().ToString(),
                oracle[i].status().ToString());
    }
  }
}

TEST(EngineBatchTest, SearchBatchAggregatesStatsPerChunk) {
  auto engine = Engine::FromXmlText(kCatalogXml);
  ASSERT_TRUE(engine.ok());
  const std::vector<std::string> queries(8, "//product/name");

  std::vector<twig::EvalStats> sequential_stats;
  auto sequential = engine->SearchBatch(queries, {}, nullptr,
                                        &sequential_stats);
  ASSERT_EQ(sequential_stats.size(), 1u);

  ThreadPool pool(4);
  std::vector<twig::EvalStats> chunk_stats;
  auto batched = engine->SearchBatch(queries, {}, &pool, &chunk_stats);
  ASSERT_EQ(chunk_stats.size(), 4u);
  uint64_t scanned = 0;
  uint64_t matches = 0;
  for (const twig::EvalStats& stats : chunk_stats) {
    EXPECT_EQ(stats.algorithm, "batch");
    scanned += stats.candidates_scanned;
    matches += stats.matches;
  }
  EXPECT_EQ(scanned, sequential_stats[0].candidates_scanned);
  EXPECT_EQ(matches, sequential_stats[0].matches);
  for (const auto& result : batched) EXPECT_TRUE(result.ok());
}

TEST(EngineBatchTest, ChunkStatsSurviveErrorsAndCountChunks) {
  auto engine = Engine::FromXmlText(kCatalogXml);
  ASSERT_TRUE(engine.ok());
  // Mix successes and a parse error: per-chunk stats must aggregate only
  // the queries that evaluated, never drop a chunk.
  std::vector<std::string> queries(6, "//product/name");
  queries[2] = "//[malformed";

  metrics::MetricsSnapshot before = metrics::Registry::Default().Snapshot();
  ThreadPool pool(3);
  std::vector<twig::EvalStats> chunk_stats;
  auto batched = engine->SearchBatch(queries, {}, &pool, &chunk_stats);
  ASSERT_EQ(batched.size(), queries.size());
  ASSERT_EQ(chunk_stats.size(), 3u);
  EXPECT_FALSE(batched[2].ok());
  uint64_t matches = 0;
  for (const twig::EvalStats& stats : chunk_stats) {
    EXPECT_EQ(stats.algorithm, "batch");
    EXPECT_GE(stats.elapsed_ms, 0.0);
    matches += stats.matches;
  }
  // 5 successful queries, each with the same match count.
  auto single = engine->Search("//product/name");
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(matches, 5 * single->stats.matches);

  metrics::MetricsSnapshot after = metrics::Registry::Default().Snapshot();
  EXPECT_EQ(after.CounterTotal("lotusx_batch_chunks_total"),
            before.CounterTotal("lotusx_batch_chunks_total") + 3);
}

TEST(EngineBatchTest, CompleteTagBatchMatchesSequential) {
  auto engine = Engine::FromXmlText(kCatalogXml);
  ASSERT_TRUE(engine.ok());
  std::vector<TagBatchRequest> requests;
  for (const char* prefix : {"", "pr", "n", "b", "", "re", "a", ""}) {
    TagBatchRequest request;
    request.query = Q("//product");
    request.request.anchor = 0;
    request.request.axis = twig::Axis::kChild;
    request.request.prefix = prefix;
    requests.push_back(std::move(request));
  }

  auto oracle = engine->CompleteTagBatch(requests);
  ThreadPool pool(3);
  auto batched = engine->CompleteTagBatch(requests, &pool);
  ASSERT_EQ(batched.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(batched[i].ok());
    ASSERT_TRUE(oracle[i].ok());
    EXPECT_EQ(*batched[i], *oracle[i]);
  }
}

TEST(EngineBatchTest, EmptyBatchIsFine) {
  auto engine = Engine::FromXmlText(kCatalogXml);
  ASSERT_TRUE(engine.ok());
  ThreadPool pool(2);
  EXPECT_TRUE(engine->SearchBatch({}, {}, &pool).empty());
  EXPECT_TRUE(engine->CompleteTagBatch({}, &pool).empty());
}

}  // namespace
}  // namespace lotusx
