#include <gtest/gtest.h>

#include "common/random.h"
#include "datagen/datagen.h"
#include "session/canvas_io.h"
#include "session/protocol.h"
#include "session/session.h"
#include "tests/test_util.h"
#include "twig/evaluator.h"
#include "twig/query_from_example.h"
#include "twig/query_parser.h"

namespace lotusx::twig {
namespace {

using lotusx::testing::MustIndex;

constexpr std::string_view kXml = R"(<dblp>
  <article key="a1">
    <author>jiaheng lu</author>
    <title>twig joins</title>
    <year>2005</year>
  </article>
  <article key="a2">
    <author>chunbin lin</author>
    <title>lotusx</title>
    <year>2012</year>
  </article>
</dblp>)";

xml::NodeId FindElement(const xml::Document& document, std::string_view tag,
                        std::string_view content) {
  for (xml::NodeId id = 0; id < document.num_nodes(); ++id) {
    if (document.node(id).kind == xml::NodeKind::kElement &&
        document.TagName(id) == tag &&
        document.ContentString(id) == content) {
      return id;
    }
  }
  return xml::kInvalidNodeId;
}

TEST(QueryFromExampleTest, BuildsPathValueAndBranch) {
  auto indexed = MustIndex(kXml);
  xml::NodeId title = FindElement(indexed.document(), "title", "lotusx");
  ASSERT_NE(title, xml::kInvalidNodeId);
  auto query = QueryFromExample(indexed, title);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  // Spine dblp/article/title with equality on the title value.
  EXPECT_EQ(query->ToString(), R"(//dblp/article/title![="lotusx"])");
}

TEST(QueryFromExampleTest, ExampleAlwaysMatchesItsOwnQuery) {
  datagen::StoreOptions options;
  options.num_products = 40;
  index::IndexedDocument indexed(datagen::GenerateStore(options));
  const xml::Document& document = indexed.document();
  lotusx::Random random(5);
  int checked = 0;
  while (checked < 30) {
    xml::NodeId node = static_cast<xml::NodeId>(
        random.NextBounded(static_cast<uint64_t>(document.num_nodes())));
    if (document.node(node).kind == xml::NodeKind::kText) continue;
    ++checked;
    QueryFromExampleOptions example_options;
    example_options.ancestor_levels =
        static_cast<int>(random.NextBounded(4));
    example_options.include_value = random.NextBool(0.5);
    example_options.include_child_branch = random.NextBool(0.5);
    auto query = QueryFromExample(indexed, node, example_options);
    ASSERT_TRUE(query.ok()) << query.status().ToString();
    auto result = Evaluate(indexed, *query);
    ASSERT_TRUE(result.ok());
    auto outputs = result->OutputNodes(query->output());
    EXPECT_TRUE(std::find(outputs.begin(), outputs.end(), node) !=
                outputs.end())
        << "node " << node << " not matched by its own query "
        << query->ToString();
  }
}

TEST(QueryFromExampleTest, AttributesWork) {
  auto indexed = MustIndex(kXml);
  xml::TagId key = indexed.document().FindTag("@key");
  ASSERT_NE(key, xml::kInvalidTagId);
  xml::NodeId attr = indexed.tag_streams().Decode(key)[0];
  auto query = QueryFromExample(indexed, attr);
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->ToString(), R"(//dblp/article/@key![="a1"])");
}

TEST(QueryFromExampleTest, RejectsTextNodesAndBadIds) {
  auto indexed = MustIndex(kXml);
  xml::NodeId text = xml::kInvalidNodeId;
  for (xml::NodeId id = 0; id < indexed.document().num_nodes(); ++id) {
    if (indexed.document().node(id).kind == xml::NodeKind::kText) {
      text = id;
      break;
    }
  }
  ASSERT_NE(text, xml::kInvalidNodeId);
  EXPECT_FALSE(QueryFromExample(indexed, text).ok());
  EXPECT_FALSE(QueryFromExample(indexed, -1).ok());
  EXPECT_FALSE(QueryFromExample(indexed, 99999).ok());
}

TEST(QueryFromExampleTest, AncestorLevelsZeroIsJustTheTag) {
  auto indexed = MustIndex(kXml);
  xml::NodeId title = FindElement(indexed.document(), "title", "lotusx");
  QueryFromExampleOptions options;
  options.ancestor_levels = 0;
  options.include_value = false;
  options.include_child_branch = false;
  auto query = QueryFromExample(indexed, title, options);
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->ToString(), "//title!");
}

// --------------------------------------------------------- CanvasFromQuery

TEST(CanvasFromQueryTest, CompilesBackToTheSameCanonicalForm) {
  for (std::string_view text :
       {"//a/b", "//a[b][c]/d!", R"(//a[ordered][b[="x"]][~"kw"]//c)",
        "//article[author][year]/title!", "//*/@key"}) {
    TwigQuery query = ParseQuery(text).value();
    session::Canvas canvas = session::CanvasFromQuery(query);
    auto compiled = canvas.Compile();
    ASSERT_TRUE(compiled.ok()) << text << ": "
                               << compiled.status().ToString();
    EXPECT_EQ(compiled->ToString(), query.ToString()) << text;
  }
}

TEST(CanvasFromQueryTest, LayoutPutsParentsAboveChildren) {
  TwigQuery query = ParseQuery("//a[b][c]/d").value();
  session::Canvas canvas = session::CanvasFromQuery(query);
  for (const session::CanvasEdge& edge : canvas.edges()) {
    EXPECT_LT(canvas.FindNode(edge.from)->y, canvas.FindNode(edge.to)->y);
  }
  // Siblings left to right in query-child order.
  auto children = canvas.ChildrenLeftToRight(1);
  ASSERT_EQ(children.size(), 3u);
}

// ------------------------------------------------------------ Protocol

TEST(ExampleProtocolTest, ExampleAndParseCommands) {
  auto indexed = MustIndex(kXml);
  session::Session session(indexed);
  session::ProtocolInterpreter interpreter(&session);
  xml::NodeId title = FindElement(indexed.document(), "title", "lotusx");
  auto response =
      interpreter.Execute("EXAMPLE " + std::to_string(title));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  auto query = interpreter.Execute("QUERY");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(*query, R"(//dblp/article/title![="lotusx"])");

  auto parsed = interpreter.Execute("PARSE //article[year]/title!");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  query = interpreter.Execute("QUERY");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(*query, "//article[year]/title!");

  EXPECT_FALSE(interpreter.Execute("EXAMPLE notanumber").ok());
  EXPECT_FALSE(interpreter.Execute("PARSE ][").ok());
}

}  // namespace
}  // namespace lotusx::twig
