#include <gtest/gtest.h>

#include "labeling/containment.h"
#include "labeling/dewey.h"
#include "labeling/extended_dewey.h"
#include "tests/test_util.h"

namespace lotusx::labeling {
namespace {

using lotusx::testing::MustParse;
using xml::Document;
using xml::NodeId;

constexpr std::string_view kSample =
    "<a><b><c>x</c><c>y</c></b><b><d/></b><e/></a>";

// ----------------------------------------------------------- Containment

TEST(ContainmentTest, LabelsAgreeWithDom) {
  Document doc = MustParse(kSample);
  ContainmentLabels labels = ContainmentLabels::Build(doc);
  ASSERT_EQ(labels.size(), static_cast<size_t>(doc.num_nodes()));
  for (NodeId a = 0; a < doc.num_nodes(); ++a) {
    for (NodeId b = 0; b < doc.num_nodes(); ++b) {
      EXPECT_EQ(IsAncestor(labels.label(a), labels.label(b)),
                doc.IsAncestor(a, b))
          << "a=" << a << " b=" << b;
      EXPECT_EQ(IsParent(labels.label(a), labels.label(b)),
                doc.node(b).parent == a)
          << "a=" << a << " b=" << b;
    }
  }
}

TEST(ContainmentTest, PrecedesIsDocumentOrder) {
  Document doc = MustParse(kSample);
  ContainmentLabels labels = ContainmentLabels::Build(doc);
  for (NodeId a = 0; a + 1 < doc.num_nodes(); ++a) {
    EXPECT_TRUE(Precedes(labels.label(a), labels.label(a + 1)));
  }
}

// ----------------------------------------------------------------- Dewey

TEST(DeweyTest, RootLabelIsEmpty) {
  Document doc = MustParse(kSample);
  DeweyStore store = DeweyStore::Build(doc);
  EXPECT_TRUE(store.label(doc.root()).empty());
  EXPECT_EQ(LabelToString(store.label(doc.root())), "<root>");
}

TEST(DeweyTest, LabelLengthEqualsDepth) {
  Document doc = MustParse(kSample);
  DeweyStore store = DeweyStore::Build(doc);
  for (NodeId id = 0; id < doc.num_nodes(); ++id) {
    EXPECT_EQ(store.label(id).size(),
              static_cast<size_t>(doc.node(id).depth));
  }
}

TEST(DeweyTest, SiblingOrdinalsIncrease) {
  Document doc = MustParse(kSample);
  DeweyStore store = DeweyStore::Build(doc);
  std::vector<NodeId> children = doc.Children(doc.root());
  ASSERT_EQ(children.size(), 3u);
  for (size_t i = 0; i < children.size(); ++i) {
    DeweyView label = store.label(children[i]);
    ASSERT_EQ(label.size(), 1u);
    EXPECT_EQ(label[0], static_cast<int32_t>(i));
  }
}

TEST(DeweyTest, RelationshipsAgreeWithDom) {
  Document doc = MustParse(kSample);
  DeweyStore store = DeweyStore::Build(doc);
  for (NodeId a = 0; a < doc.num_nodes(); ++a) {
    for (NodeId b = 0; b < doc.num_nodes(); ++b) {
      EXPECT_EQ(IsAncestorLabel(store.label(a), store.label(b)),
                doc.IsAncestor(a, b));
      EXPECT_EQ(IsParentLabel(store.label(a), store.label(b)),
                doc.node(b).parent == a);
    }
  }
}

TEST(DeweyTest, CompareMatchesDocumentOrder) {
  Document doc = MustParse(kSample);
  DeweyStore store = DeweyStore::Build(doc);
  for (NodeId a = 0; a < doc.num_nodes(); ++a) {
    for (NodeId b = 0; b < doc.num_nodes(); ++b) {
      int cmp = CompareLabels(store.label(a), store.label(b));
      if (a < b) {
        EXPECT_LT(cmp, 0);
      } else if (a == b) {
        EXPECT_EQ(cmp, 0);
      } else {
        EXPECT_GT(cmp, 0);
      }
    }
  }
}

TEST(DeweyTest, CommonPrefixIsLcaDepth) {
  Document doc = MustParse(kSample);
  DeweyStore store = DeweyStore::Build(doc);
  // c(x) and c(y) share parent b at depth 1 -> common prefix length 1.
  xml::TagId c_tag = doc.FindTag("c");
  ASSERT_NE(c_tag, xml::kInvalidTagId);
  std::vector<NodeId> cs;
  for (NodeId id = 0; id < doc.num_nodes(); ++id) {
    if (doc.node(id).kind == xml::NodeKind::kElement &&
        doc.node(id).tag == c_tag) {
      cs.push_back(id);
    }
  }
  ASSERT_EQ(cs.size(), 2u);
  EXPECT_EQ(CommonPrefixLength(store.label(cs[0]), store.label(cs[1])), 1u);
}

TEST(DeweyTest, LabelToString) {
  Document doc = MustParse(kSample);
  DeweyStore store = DeweyStore::Build(doc);
  // First c element: path a(root) -> b(0) -> c(0) => "0.0".
  xml::TagId c_tag = doc.FindTag("c");
  for (NodeId id = 0; id < doc.num_nodes(); ++id) {
    if (doc.node(id).kind == xml::NodeKind::kElement &&
        doc.node(id).tag == c_tag) {
      EXPECT_EQ(LabelToString(store.label(id)), "0.0");
      break;
    }
  }
}

// ------------------------------------------------------------ Transducer

TEST(TransducerTest, ChildTagsAreSortedAndComplete) {
  Document doc = MustParse(kSample);
  TagTransducer transducer = TagTransducer::Build(doc);
  xml::TagId a = doc.FindTag("a");
  const std::vector<XTagId>& children = transducer.ChildTags(a);
  // a's children: b, e.
  ASSERT_EQ(children.size(), 2u);
  EXPECT_TRUE(std::is_sorted(children.begin(), children.end()));
  for (XTagId child : children) {
    EXPECT_GE(transducer.ChildIndex(a, child), 0);
  }
  EXPECT_EQ(transducer.ChildIndex(a, doc.FindTag("c")), -1);
}

TEST(TransducerTest, TextChildrenUseSyntheticTag) {
  Document doc = MustParse(kSample);
  TagTransducer transducer = TagTransducer::Build(doc);
  xml::TagId c = doc.FindTag("c");
  ASSERT_EQ(transducer.ChildTags(c).size(), 1u);
  EXPECT_EQ(transducer.ChildTags(c)[0], transducer.text_tag());
}

// --------------------------------------------------------- ExtendedDewey

TEST(ExtendedDeweyTest, StructuralSemanticsMatchOrdinalDewey) {
  Document doc = MustParse(kSample);
  TagTransducer transducer = TagTransducer::Build(doc);
  ExtendedDeweyStore store = ExtendedDeweyStore::Build(doc, transducer);
  for (NodeId a = 0; a < doc.num_nodes(); ++a) {
    for (NodeId b = 0; b < doc.num_nodes(); ++b) {
      EXPECT_EQ(IsAncestorLabel(store.label(a), store.label(b)),
                doc.IsAncestor(a, b));
    }
    if (a + 1 < doc.num_nodes()) {
      EXPECT_LT(CompareLabels(store.label(a), store.label(a + 1)), 0);
    }
  }
}

TEST(ExtendedDeweyTest, DecodesFullTagPath) {
  Document doc = MustParse(kSample);
  TagTransducer transducer = TagTransducer::Build(doc);
  ExtendedDeweyStore store = ExtendedDeweyStore::Build(doc, transducer);
  XTagId root_tag = doc.node(doc.root()).tag;
  for (NodeId id = 0; id < doc.num_nodes(); ++id) {
    std::vector<XTagId> decoded = ExtendedDeweyStore::DecodeTagPath(
        transducer, root_tag, store.label(id));
    // Compare against the true tag path from the DOM.
    std::vector<XTagId> expected;
    for (NodeId walk = id; walk != xml::kInvalidNodeId;
         walk = doc.node(walk).parent) {
      expected.push_back(doc.node(walk).kind == xml::NodeKind::kText
                             ? transducer.text_tag()
                             : doc.node(walk).tag);
    }
    std::reverse(expected.begin(), expected.end());
    EXPECT_EQ(decoded, expected) << "node " << id;
  }
}

TEST(ExtendedDeweyTest, DecodesOnLargerGeneratedDocument) {
  // A denser structure with attributes and repeated tags at many paths.
  std::string xml = "<r>";
  for (int i = 0; i < 20; ++i) {
    xml += "<s id=\"" + std::to_string(i) + "\"><t><u>v</u></t>";
    if (i % 2 == 0) xml += "<t>direct</t>";
    if (i % 3 == 0) xml += "<w><t><w/></t></w>";
    xml += "</s>";
  }
  xml += "</r>";
  Document doc = MustParse(xml);
  TagTransducer transducer = TagTransducer::Build(doc);
  ExtendedDeweyStore store = ExtendedDeweyStore::Build(doc, transducer);
  XTagId root_tag = doc.node(doc.root()).tag;
  for (NodeId id = 0; id < doc.num_nodes(); ++id) {
    std::vector<XTagId> decoded = ExtendedDeweyStore::DecodeTagPath(
        transducer, root_tag, store.label(id));
    ASSERT_EQ(decoded.size(), static_cast<size_t>(doc.node(id).depth) + 1);
    XTagId own = doc.node(id).kind == xml::NodeKind::kText
                     ? transducer.text_tag()
                     : doc.node(id).tag;
    EXPECT_EQ(decoded.back(), own);
    EXPECT_EQ(decoded.front(), root_tag);
  }
}

}  // namespace
}  // namespace lotusx::labeling
