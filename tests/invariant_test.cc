// Tests of the invariant-audit layer (ValidateInvariants across the DOM
// and every index component) plus regression tests for decoder defects
// the layer was built to catch: hostile index images that previously
// caused out-of-bounds writes, wrapped accumulators, or structures that
// would hang queries, and now must come back as clean Corruption errors.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/coding.h"
#include "index/dataguide.h"
#include "index/indexed_document.h"
#include "index/tag_streams.h"
#include "index/trie.h"
#include "tests/test_util.h"
#include "xml/dom.h"

namespace lotusx {
namespace {

constexpr std::string_view kSampleXml =
    "<dblp><article key=\"a1\"><author>lu ling</author>"
    "<title>twig joins</title><year>2005</year></article>"
    "<book><author>chen</author><title>xml search</title></book></dblp>";

// ---------------------------------------------------------------------
// Positive audits: everything the normal build pipeline produces passes.

TEST(InvariantTest, FreshDocumentPassesAudit) {
  xml::Document document = testing::MustParse(kSampleXml);
  EXPECT_TRUE(document.ValidateInvariants().ok());
}

TEST(InvariantTest, FreshIndexPassesDeepAudit) {
  index::IndexedDocument indexed = testing::MustIndex(kSampleXml);
  Status audit = indexed.ValidateInvariants(/*deep=*/true);
  EXPECT_TRUE(audit.ok()) << audit.ToString();
}

TEST(InvariantTest, ReloadedIndexPassesDeepAudit) {
  index::IndexedDocument indexed = testing::MustIndex(kSampleXml);
  std::string path = ::testing::TempDir() + "/lotusx_invariant_ok.ltsx";
  ASSERT_TRUE(indexed.SaveTo(path).ok());
  auto loaded = index::IndexedDocument::LoadFrom(path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  Status audit = loaded->ValidateInvariants(/*deep=*/true);
  EXPECT_TRUE(audit.ok()) << audit.ToString();
}

TEST(InvariantTest, UnfinalizedDocumentFailsAudit) {
  xml::Document document;
  document.AppendElement(xml::kInvalidNodeId, "r");
  EXPECT_TRUE(document.ValidateInvariants().IsCorruption());
}

// ---------------------------------------------------------------------
// Regression: DataGuide::DecodeFrom used to cast a hostile uint32 tag to
// a negative TagId and index paths_by_tag_ out of bounds while building
// derived data (an OOB write before any cross-check could run).

TEST(InvariantTest, DataGuideRejectsHostileTagId) {
  std::string image;
  Encoder encoder(&image);
  encoder.PutVarint64(1);           // one path node
  encoder.PutVarint32(0xFFFFFFFF);  // hostile tag
  encoder.PutVarint32(0);           // parent + 1 (root)
  encoder.PutVarint32(1);           // count
  encoder.PutVarint32(0);           // text_count
  encoder.PutVarint64(0);           // empty path_of
  Decoder decoder(image);
  auto guide = index::DataGuide::DecodeFrom(&decoder);
  ASSERT_FALSE(guide.ok());
  EXPECT_TRUE(guide.status().IsCorruption());
}

// A wire-valid DataGuide that lies about the document (inflated count)
// decodes fine but must fail the cross-component audit LoadFrom runs.

TEST(InvariantTest, DataGuideAuditCatchesWrongCounts) {
  xml::Document document = testing::MustParse("<r><a/></r>");
  std::string image;
  Encoder encoder(&image);
  encoder.PutVarint64(2);  // paths: /r and /r/a
  encoder.PutVarint32(0);  // tag r
  encoder.PutVarint32(0);  // root
  encoder.PutVarint32(2);  // count LIES: r occurs once
  encoder.PutVarint32(0);
  encoder.PutVarint32(1);  // tag a
  encoder.PutVarint32(1);  // parent path 0
  encoder.PutVarint32(1);  // count
  encoder.PutVarint32(0);
  encoder.PutVarint64(2);  // path_of per document node
  encoder.PutVarint32(1);  // node 0 -> path 0
  encoder.PutVarint32(2);  // node 1 -> path 1
  Decoder decoder(image);
  auto guide = index::DataGuide::DecodeFrom(&decoder);
  ASSERT_TRUE(guide.ok()) << guide.status().ToString();
  EXPECT_TRUE(guide->ValidateInvariants(document).IsCorruption());
}

// ---------------------------------------------------------------------
// Regression: a cyclic trie image decodes (the decoder only checks local
// ranges) but used to hang Complete()/Enumerate(); the audit must flag
// it before any traversal runs.

TEST(InvariantTest, TrieAuditCatchesCycle) {
  std::string image;
  Encoder encoder(&image);
  encoder.PutVarint64(3);  // nodes: root + detached 2-cycle
  encoder.PutVarint64(0);  // num_keys
  // Node 0 (root): no terminal, no children.
  encoder.PutVarint64(0);
  encoder.PutVarint64(0);
  encoder.PutVarint64(0);
  // Node 1: child 'a' -> 2.
  encoder.PutVarint64(0);
  encoder.PutVarint64(0);
  encoder.PutVarint64(1);
  encoder.PutVarint32('a');
  encoder.PutVarint32(2);
  // Node 2: child 'a' -> 1, closing the cycle.
  encoder.PutVarint64(0);
  encoder.PutVarint64(0);
  encoder.PutVarint64(1);
  encoder.PutVarint32('a');
  encoder.PutVarint32(1);
  Decoder decoder(image);
  auto trie = index::Trie::DecodeFrom(&decoder);
  ASSERT_TRUE(trie.ok()) << trie.status().ToString();
  EXPECT_TRUE(trie->ValidateInvariants().IsCorruption());
}

TEST(InvariantTest, TrieAuditCatchesRootCycle) {
  std::string image;
  Encoder encoder(&image);
  encoder.PutVarint64(2);
  encoder.PutVarint64(1);
  // Node 0 (root): child 'x' -> 1.
  encoder.PutVarint64(0);
  encoder.PutVarint64(7);
  encoder.PutVarint64(1);
  encoder.PutVarint32('x');
  encoder.PutVarint32(1);
  // Node 1: terminal, but points back at the root.
  encoder.PutVarint64(7);
  encoder.PutVarint64(7);
  encoder.PutVarint64(1);
  encoder.PutVarint32('x');
  encoder.PutVarint32(0);
  Decoder decoder(image);
  auto trie = index::Trie::DecodeFrom(&decoder);
  ASSERT_TRUE(trie.ok()) << trie.status().ToString();
  EXPECT_TRUE(trie->ValidateInvariants().IsCorruption());
}

// ---------------------------------------------------------------------
// Regression: the delta accumulator of GetSortedU32List used to wrap
// around uint32, producing an "increasing" list that was not.

TEST(InvariantTest, SortedListDecoderRejectsOverflow) {
  std::string image;
  Encoder encoder(&image);
  encoder.PutVarint64(2);           // two elements
  encoder.PutVarint32(0xF0000000);  // first value
  encoder.PutVarint32(0x20000000);  // delta pushing past 2^32
  Decoder decoder(image);
  std::vector<uint32_t> values;
  Status status = decoder.GetSortedU32List(&values);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsCorruption());
}

// ---------------------------------------------------------------------
// Regression: a full index image whose tag-stream section points past
// the document used to load silently and read out of bounds at query
// time. LoadFrom must reject it during the cross-component audit.

TEST(InvariantTest, LoadFromRejectsOutOfRangeStreamNode) {
  index::IndexedDocument indexed = testing::MustIndex(kSampleXml);
  const xml::Document& document = indexed.document();

  std::string image;
  Encoder encoder(&image);
  encoder.PutFixed32(0x4C545358);  // "LTSX"
  encoder.PutFixed32(2);           // format version
  index::EncodeDocument(document, &encoder);
  indexed.dataguide().EncodeTo(&encoder);
  // Tag streams, with stream 0 smuggling a node id past the document.
  // The blocks themselves are internally consistent (so PostingBlocks'
  // own validation passes); only the cross-component audit against the
  // document can catch the rogue id.
  encoder.PutVarint64(static_cast<uint64_t>(document.num_tags()));
  for (xml::TagId tag = 0; tag < document.num_tags(); ++tag) {
    std::vector<xml::NodeId> stream = indexed.tag_streams().Decode(tag);
    std::vector<uint32_t> ids(stream.begin(), stream.end());
    if (tag == 0) {
      ids.push_back(static_cast<uint32_t>(document.num_nodes()) + 100);
    }
    index::PostingBlocks::FromSorted(ids).EncodeTo(&encoder);
  }
  indexed.terms().EncodeTo(&encoder);

  std::string path = ::testing::TempDir() + "/lotusx_invariant_evil.ltsx";
  ASSERT_TRUE(WriteStringToFile(path, image).ok());
  auto loaded = index::IndexedDocument::LoadFrom(path);
  std::remove(path.c_str());
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
}

}  // namespace
}  // namespace lotusx
