#include <gtest/gtest.h>

#include "rewrite/rewriter.h"
#include "tests/test_util.h"
#include "twig/query_parser.h"

namespace lotusx::rewrite {
namespace {

using lotusx::testing::MustIndex;
using twig::TwigQuery;

TwigQuery Q(std::string_view text) {
  auto result = twig::ParseQuery(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

constexpr std::string_view kXml = R"(<dblp>
  <article>
    <author>jiaheng lu</author>
    <title>holistic twig joins</title>
    <year>2005</year>
    <meta><venue>vldb</venue></meta>
  </article>
  <article>
    <author>chunbin lin</author>
    <title>lotusx demo</title>
    <year>2012</year>
  </article>
  <book>
    <writer>tok wang ling</writer>
    <title>xml data management</title>
  </book>
</dblp>)";

TEST(RewriterTest, OriginalQueryWithResultsIsUntouched) {
  auto indexed = MustIndex(kXml);
  Rewriter rewriter(indexed);
  auto outcome = rewriter.Rewrite(Q("//article/title"));
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->applied.empty());
  EXPECT_EQ(outcome->penalty, 0.0);
  EXPECT_EQ(outcome->evaluations, 0u);
  EXPECT_EQ(outcome->result.matches.size(), 2u);
}

TEST(RewriterTest, AxisRelaxationRecoversNestedMatch) {
  auto indexed = MustIndex(kXml);
  Rewriter rewriter(indexed);
  // venue is under meta, not a direct child of article.
  auto outcome = rewriter.Rewrite(Q("//article/venue"));
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->result.matches.size(), 1u);
  ASSERT_EQ(outcome->applied.size(), 1u);
  EXPECT_NE(outcome->applied[0].find("relax"), std::string::npos);
  EXPECT_EQ(outcome->penalty, 1.0);
}

TEST(RewriterTest, MisspelledTagIsRespelled) {
  auto indexed = MustIndex(kXml);
  Rewriter rewriter(indexed);
  auto outcome = rewriter.Rewrite(Q("//article/titel"));
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->query.node(1).tag, "title");
  EXPECT_EQ(outcome->result.matches.size(), 2u);
}

TEST(RewriterTest, SiblingTagSubstitution) {
  auto indexed = MustIndex(kXml);
  Rewriter rewriter(indexed);
  // book has writer, not author; they are DataGuide siblings of the book
  // paths? ("author" under book does not exist; "writer" is a sibling of
  // title under book).
  auto outcome = rewriter.Rewrite(Q("//book/author"));
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_GE(outcome->result.matches.size(), 1u);
}

TEST(RewriterTest, EqualsRelaxesToContains) {
  auto indexed = MustIndex(kXml);
  Rewriter rewriter(indexed);
  // No title equals exactly "twig joins", but both keywords occur.
  auto outcome = rewriter.Rewrite(Q(R"(//title[="twig joins"])"));
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->result.matches.size(), 1u);
  ASSERT_FALSE(outcome->applied.empty());
  EXPECT_NE(outcome->applied[0].find("keywords"), std::string::npos);
}

TEST(RewriterTest, DropsUnsatisfiableBranch) {
  auto indexed = MustIndex(kXml);
  Rewriter rewriter(indexed);
  // article never has an isbn; the branch gets dropped (or substituted).
  auto outcome = rewriter.Rewrite(Q("//article[isbn]/title!"));
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_GE(outcome->result.matches.size(), 1u);
}

TEST(RewriterTest, ChainsMultipleRewrites) {
  auto indexed = MustIndex(kXml);
  Rewriter rewriter(indexed);
  // Both a wrong axis and a misspelling; the value predicate rules out
  // every single-step rewrite (no direct child of article is "vldb"), so
  // only the respell + axis-relax chain succeeds.
  auto outcome = rewriter.Rewrite(Q(R"(//article/venu[="vldb"])"));
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->result.matches.size(), 1u);
  EXPECT_GE(outcome->applied.size(), 2u);
  EXPECT_EQ(outcome->query.ToString(), R"(//article//venue![="vldb"])");
}

TEST(RewriterTest, RespectsEvaluationBudget) {
  auto indexed = MustIndex(kXml);
  Rewriter rewriter(indexed);
  RewriteOptions options;
  options.max_evaluations = 1;
  options.max_penalty = 100;
  auto outcome = rewriter.Rewrite(Q("//zzz/qqq[xxx]"), options);
  EXPECT_FALSE(outcome.ok());
  EXPECT_TRUE(outcome.status().IsNotFound());
}

TEST(RewriterTest, RespectsPenaltyBudget) {
  auto indexed = MustIndex(kXml);
  Rewriter rewriter(indexed);
  RewriteOptions options;
  options.max_penalty = 0.5;  // below every rule's penalty
  auto outcome = rewriter.Rewrite(Q("//article/venue"), options);
  EXPECT_FALSE(outcome.ok());
}

TEST(RewriterTest, RuleTogglesDisableRules) {
  auto indexed = MustIndex(kXml);
  Rewriter rewriter(indexed);
  RewriteOptions no_axis;
  no_axis.relax_axes = false;
  no_axis.substitute_tags = false;
  no_axis.drop_leaves = false;
  no_axis.relax_predicates = false;
  auto outcome = rewriter.Rewrite(Q("//article/venue"), no_axis);
  EXPECT_FALSE(outcome.ok());
  std::vector<RewriteCandidate> proposals =
      rewriter.Propose(Q("//article/venue"), no_axis);
  EXPECT_TRUE(proposals.empty());
}

TEST(RewriterTest, ProposalsAreOrderedByPenalty) {
  auto indexed = MustIndex(kXml);
  Rewriter rewriter(indexed);
  std::vector<RewriteCandidate> proposals =
      rewriter.Propose(Q(R"(//article[year[="1999"]]/title)"));
  ASSERT_GT(proposals.size(), 1u);
  for (size_t i = 1; i < proposals.size(); ++i) {
    EXPECT_LE(proposals[i - 1].penalty, proposals[i].penalty);
  }
}

TEST(RewriterTest, MinResultsThreshold) {
  auto indexed = MustIndex(kXml);
  Rewriter rewriter(indexed);
  RewriteOptions options;
  options.min_results = 3;
  // //article/title has only 2 matches; relaxing article to // any title
  // position should eventually reach 3 titles.
  auto outcome = rewriter.Rewrite(Q("//article/title"), options);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_GE(outcome->result.matches.size(), 3u);
  EXPECT_FALSE(outcome->applied.empty());
}

TEST(RemoveLeafTest, RenumbersAndPreservesEverythingElse) {
  TwigQuery query = Q(R"(//a[b[="x"]][c]/d!)");
  // Remove leaf c (node 2).
  TwigQuery pruned = Rewriter::RemoveLeaf(query, 2);
  EXPECT_EQ(pruned.size(), 3);
  EXPECT_EQ(pruned.node(0).tag, "a");
  EXPECT_EQ(pruned.node(1).tag, "b");
  EXPECT_EQ(pruned.node(1).predicate.text, "x");
  EXPECT_EQ(pruned.node(2).tag, "d");
  EXPECT_EQ(pruned.output(), 2);
  EXPECT_TRUE(pruned.Validate().ok());
}

TEST(RemoveLeafDeathTest, RefusesRootAndOutput) {
  TwigQuery query = Q("//a/b");
  EXPECT_DEATH(Rewriter::RemoveLeaf(query, 1), "output");
  TwigQuery single = Q("//a");
  EXPECT_DEATH(Rewriter::RemoveLeaf(single, 0), "root|output");
}

}  // namespace
}  // namespace lotusx::rewrite
