// Block-compressed posting storage: round-trip properties, hostile-image
// fuzzing (truncated / bit-flipped / metadata-lying images must fail
// cleanly, never crash or read out of bounds), the PostingCursor
// conformance suite run against both the raw-vector and block-compressed
// implementations, and scalar-vs-SIMD decoder equality.

#include <algorithm>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "common/arena.h"
#include "common/coding.h"
#include "index/posting_blocks.h"
#include "index/posting_codec.h"
#include "index/posting_cursor.h"

namespace lotusx::index {
namespace {

/// Strictly increasing random keys: `count` draws with geometric-ish gaps
/// so lists cover dense runs and sparse jumps.
std::vector<uint32_t> RandomKeys(std::mt19937* rng, size_t count,
                                 uint32_t max_gap) {
  std::uniform_int_distribution<uint32_t> gap(1, max_gap);
  std::vector<uint32_t> keys;
  keys.reserve(count);
  uint32_t next = gap(*rng) - 1;
  for (size_t i = 0; i < count; ++i) {
    keys.push_back(next);
    uint64_t bumped = static_cast<uint64_t>(next) + gap(*rng);
    if (bumped > UINT32_MAX) break;
    next = static_cast<uint32_t>(bumped);
  }
  return keys;
}

std::vector<uint32_t> RandomPayloads(std::mt19937* rng, size_t count) {
  std::uniform_int_distribution<uint32_t> value(0, 1'000'000);
  std::vector<uint32_t> payloads(count);
  for (uint32_t& p : payloads) p = value(*rng);
  return payloads;
}

std::string Encoded(const PostingBlocks& blocks) {
  std::string image;
  Encoder encoder(&image);
  blocks.EncodeTo(&encoder);
  return image;
}

// ------------------------------------------------------- round-trip props

TEST(PostingBlocksTest, EmptyList) {
  PostingBlocks blocks = PostingBlocks::FromSorted({});
  EXPECT_TRUE(blocks.empty());
  EXPECT_EQ(blocks.num_blocks(), 0u);
  EXPECT_EQ(blocks.ValidateInvariants(), Status::OK());
  Arena arena;
  EXPECT_TRUE(blocks.NewCursor(&arena).AtEnd());
  EXPECT_FALSE(blocks.Contains(0));

  std::string image = Encoded(blocks);
  Decoder decoder(image);
  auto decoded = PostingBlocks::DecodeFrom(&decoder);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(PostingBlocksTest, RoundTripsAcrossSizesAndDensities) {
  std::mt19937 rng(7);
  // Sizes straddle the block boundary: partial, exact, and multi-block.
  for (size_t count : {1u, 2u, 127u, 128u, 129u, 255u, 256u, 1000u, 5000u}) {
    for (uint32_t max_gap : {1u, 3u, 1000u}) {
      std::vector<uint32_t> keys = RandomKeys(&rng, count, max_gap);
      PostingBlocks blocks = PostingBlocks::FromSorted(keys);
      EXPECT_EQ(blocks.size(), keys.size());
      EXPECT_EQ(blocks.min_key(), keys.front());
      EXPECT_EQ(blocks.max_key(), keys.back());
      EXPECT_EQ(blocks.num_blocks(),
                (keys.size() + PostingBlocks::kBlockEntries - 1) /
                    PostingBlocks::kBlockEntries);
      EXPECT_EQ(blocks.ValidateInvariants(), Status::OK());
      EXPECT_EQ(blocks.DecodeKeys(), keys);

      std::string image = Encoded(blocks);
      Decoder decoder(image);
      auto decoded = PostingBlocks::DecodeFrom(&decoder);
      ASSERT_TRUE(decoded.ok())
          << decoded.status().ToString() << " count=" << count
          << " gap=" << max_gap;
      EXPECT_EQ(decoded->DecodeKeys(), keys);
      EXPECT_EQ(decoder.remaining(), 0u);
    }
  }
}

TEST(PostingBlocksTest, PayloadChannelRoundTrips) {
  std::mt19937 rng(11);
  for (size_t count : {1u, 128u, 129u, 1000u}) {
    std::vector<uint32_t> keys = RandomKeys(&rng, count, 50);
    std::vector<uint32_t> payloads = RandomPayloads(&rng, keys.size());
    PostingBlocks blocks = PostingBlocks::FromSorted(keys, payloads);
    ASSERT_TRUE(blocks.has_payload());
    EXPECT_EQ(blocks.ValidateInvariants(), Status::OK());
    EXPECT_EQ(blocks.DecodePayloads(), payloads);

    std::string image = Encoded(blocks);
    Decoder decoder(image);
    auto decoded = PostingBlocks::DecodeFrom(&decoder);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->DecodeKeys(), keys);
    EXPECT_EQ(decoded->DecodePayloads(), payloads);

    // Point lookups agree with the parallel arrays.
    for (size_t i = 0; i < keys.size(); i += 7) {
      EXPECT_TRUE(blocks.Contains(keys[i]));
      EXPECT_EQ(blocks.PayloadFor(keys[i]), payloads[i]);
    }
  }
}

TEST(PostingBlocksTest, ContainsRejectsAbsentKeys) {
  std::vector<uint32_t> keys = {5, 10, 300, 301, 99'000};
  PostingBlocks blocks = PostingBlocks::FromSorted(keys);
  for (uint32_t key : keys) EXPECT_TRUE(blocks.Contains(key));
  for (uint32_t absent : {0u, 6u, 299u, 302u, 100'000u, UINT32_MAX}) {
    EXPECT_FALSE(blocks.Contains(absent));
    EXPECT_EQ(blocks.PayloadFor(absent), 0u);
  }
}

TEST(PostingBlocksTest, MemoryStaysWellUnderRawVectors) {
  std::mt19937 rng(13);
  std::vector<uint32_t> keys = RandomKeys(&rng, 100'000, 8);
  PostingBlocks blocks = PostingBlocks::FromSorted(keys);
  // Dense deltas varint-encode to ~1 byte vs 4 raw; 2x is the acceptance
  // floor, typical is ~3-4x.
  EXPECT_LT(blocks.MemoryUsage(), keys.size() * sizeof(uint32_t) / 2);
}

TEST(PostingBlocksTest, StatsDescribeTheSkipIndex) {
  std::vector<uint32_t> keys(300);
  for (size_t i = 0; i < keys.size(); ++i) {
    keys[i] = static_cast<uint32_t>(10 * i);
  }
  PostingBlocks::BlockStats stats =
      PostingBlocks::FromSorted(keys).Stats();
  EXPECT_EQ(stats.blocks, 3u);
  EXPECT_DOUBLE_EQ(stats.avg_fill, 100.0);
  EXPECT_EQ(stats.key_span, 2991u);  // 0..2990 inclusive
}

// ------------------------------------------------------- hostile images

TEST(PostingBlocksTest, TruncatedImagesFailCleanly) {
  std::mt19937 rng(17);
  std::vector<uint32_t> keys = RandomKeys(&rng, 400, 20);
  std::vector<uint32_t> payloads = RandomPayloads(&rng, keys.size());
  std::string image = Encoded(PostingBlocks::FromSorted(keys, payloads));
  // Every proper prefix must be rejected, not crash or load garbage.
  for (size_t len = 0; len < image.size(); ++len) {
    Decoder decoder(std::string_view(image.data(), len));
    auto decoded = PostingBlocks::DecodeFrom(&decoder);
    EXPECT_FALSE(decoded.ok()) << "prefix of " << len << " bytes loaded";
  }
}

TEST(PostingBlocksTest, BitFlippedImagesNeverLoadInconsistent) {
  std::mt19937 rng(19);
  std::vector<uint32_t> keys = RandomKeys(&rng, 300, 5);
  std::string image = Encoded(PostingBlocks::FromSorted(keys));
  std::uniform_int_distribution<size_t> pos(0, image.size() - 1);
  std::uniform_int_distribution<int> bit(0, 7);
  for (int trial = 0; trial < 500; ++trial) {
    std::string evil = image;
    evil[pos(rng)] ^= static_cast<char>(1 << bit(rng));
    Decoder decoder(evil);
    auto decoded = PostingBlocks::DecodeFrom(&decoder);
    if (!decoded.ok()) continue;  // rejected: fine
    // Whatever loads must be fully self-consistent — DecodeFrom promises
    // the unchecked fast decoder is then safe on it.
    EXPECT_EQ(decoded->ValidateInvariants(), Status::OK());
    std::vector<uint32_t> round = decoded->DecodeKeys();
    EXPECT_TRUE(std::is_sorted(round.begin(), round.end()));
    EXPECT_EQ(round.size(), decoded->size());
  }
}

TEST(PostingBlocksTest, LyingMetadataIsRejected) {
  std::vector<uint32_t> keys;
  for (uint32_t i = 0; i < 200; ++i) keys.push_back(3 * i + 1);
  std::string image = Encoded(PostingBlocks::FromSorted(keys));

  // The wire layout starts: varint32 total, varint32 flags, varint64
  // blocks, then per-block varint32 count/min/max/key_bytes/block_bytes.
  // total=200 and flags=0 are two bytes each/one byte; rewrite total.
  {
    std::string evil = image;
    evil[0] = static_cast<char>(0x7F);  // total_count 127 != sum of counts
    Decoder decoder(evil);
    EXPECT_FALSE(PostingBlocks::DecodeFrom(&decoder).ok());
  }
  {
    std::string evil = image;
    evil[1] = 0x02;  // payload flag > 1
    Decoder decoder(evil);
    EXPECT_FALSE(PostingBlocks::DecodeFrom(&decoder).ok());
  }
  {
    std::string evil = image;
    evil[2] = 0x7F;  // claim 127 blocks with data for 2
    Decoder decoder(evil);
    EXPECT_FALSE(PostingBlocks::DecodeFrom(&decoder).ok());
  }
}

// --------------------------------------------------------------- codec

TEST(PostingCodecTest, ReadVarint32RejectsHostileInputs) {
  uint32_t out = 0;
  {
    // Truncated: continuation bit set, no next byte.
    const uint8_t data[] = {0x80};
    EXPECT_EQ(codec::ReadVarint32(data, data + 1, &out), nullptr);
  }
  {
    // Overlong: six bytes of continuation.
    const uint8_t data[] = {0x80, 0x80, 0x80, 0x80, 0x80, 0x01};
    EXPECT_EQ(codec::ReadVarint32(data, data + sizeof(data), &out), nullptr);
  }
  {
    // Five bytes whose payload exceeds 32 bits.
    const uint8_t data[] = {0xFF, 0xFF, 0xFF, 0xFF, 0x7F};
    EXPECT_EQ(codec::ReadVarint32(data, data + sizeof(data), &out), nullptr);
  }
  {
    // UINT32_MAX itself is fine.
    const uint8_t data[] = {0xFF, 0xFF, 0xFF, 0xFF, 0x0F};
    EXPECT_NE(codec::ReadVarint32(data, data + sizeof(data), &out), nullptr);
    EXPECT_EQ(out, UINT32_MAX);
  }
}

TEST(PostingCodecTest, CheckedKeyDecoderRejectsZeroAndWrappingDeltas) {
  uint32_t out[4];
  {
    // first=5, delta=0: keys must be strictly increasing.
    const uint8_t data[] = {0x05, 0x00};
    EXPECT_EQ(codec::DecodeDeltaKeysChecked(data, data + sizeof(data), 2,
                                            out),
              nullptr);
  }
  {
    // first=UINT32_MAX, delta=1 wraps the accumulator.
    const uint8_t data[] = {0xFF, 0xFF, 0xFF, 0xFF, 0x0F, 0x01};
    EXPECT_EQ(codec::DecodeDeltaKeysChecked(data, data + sizeof(data), 2,
                                            out),
              nullptr);
  }
  {
    const uint8_t data[] = {0x05, 0x03, 0x01};  // 5, 8, 9
    const uint8_t* after =
        codec::DecodeDeltaKeysChecked(data, data + sizeof(data), 3, out);
    ASSERT_EQ(after, data + sizeof(data));
    EXPECT_EQ(out[0], 5u);
    EXPECT_EQ(out[1], 8u);
    EXPECT_EQ(out[2], 9u);
  }
}

TEST(PostingCodecTest, ScalarAndSimdDecodersAgree) {
  codec::DeltaDecodeFn simd = codec::SimdDeltaDecoder();
  if (simd == nullptr) {
    GTEST_SKIP() << "SIMD decode disabled in this build";
  }
  std::mt19937 rng(23);
  for (int trial = 0; trial < 200; ++trial) {
    std::uniform_int_distribution<size_t> size(1, 300);
    std::uniform_int_distribution<uint32_t> gaps(1, trial % 2 ? 100'000 : 80);
    size_t count = size(rng);
    std::vector<uint32_t> keys;
    uint32_t next = gaps(rng);
    for (size_t i = 0; i < count; ++i) {
      keys.push_back(next);
      uint64_t bumped = static_cast<uint64_t>(next) + gaps(rng);
      if (bumped > UINT32_MAX) break;
      next = static_cast<uint32_t>(bumped);
    }
    std::string encoded;
    Encoder encoder(&encoded);
    uint32_t previous = 0;
    for (size_t i = 0; i < keys.size(); ++i) {
      encoder.PutVarint32(i == 0 ? keys[0] : keys[i] - previous);
      previous = keys[i];
    }
    const auto* begin = reinterpret_cast<const uint8_t*>(encoded.data());
    const uint8_t* end = begin + encoded.size();
    std::vector<uint32_t> scalar_out(keys.size());
    std::vector<uint32_t> simd_out(keys.size());
    const uint8_t* scalar_after = codec::DecodeDeltaKeysScalar(
        begin, end, keys.size(), scalar_out.data());
    const uint8_t* simd_after =
        simd(begin, end, keys.size(), simd_out.data());
    ASSERT_EQ(scalar_after, end);
    ASSERT_EQ(simd_after, end);
    EXPECT_EQ(scalar_out, keys);
    EXPECT_EQ(simd_out, keys);
  }
}

// ------------------------------------------- PostingCursor conformance

/// Drives one cursor through a randomized Next/SeekGE schedule, checking
/// every contract clause against the reference sorted vector.
void RunConformance(PostingCursor* cursor,
                    const std::vector<uint32_t>& reference,
                    std::mt19937* rng) {
  size_t ref_pos = 0;
  ASSERT_EQ(cursor->AtEnd(), reference.empty());
  std::uniform_int_distribution<int> coin(0, 99);
  std::uniform_int_distribution<uint32_t> jump(0, reference.empty()
                                                      ? 1
                                                      : reference.back() + 5);
  while (!cursor->AtEnd()) {
    ASSERT_LT(ref_pos, reference.size());
    ASSERT_EQ(cursor->Key(), reference[ref_pos]);
    ASSERT_GE(cursor->BlockMax(), cursor->Key());
    int action = coin(*rng);
    if (action < 60) {
      cursor->Next();
      ++ref_pos;
    } else if (action < 80) {
      // Seek forward to a random target.
      uint32_t target = jump(*rng);
      if (target < cursor->Key()) target = cursor->Key();  // never backward
      bool found = cursor->SeekGE(target);
      ref_pos = static_cast<size_t>(
          std::lower_bound(reference.begin() + static_cast<ptrdiff_t>(ref_pos),
                           reference.end(), target) -
          reference.begin());
      ASSERT_EQ(found, ref_pos < reference.size());
      if (found) {
        ASSERT_EQ(cursor->Key(), reference[ref_pos]);
      }
    } else {
      // SeekGE at-or-before the current key is a no-op.
      uint32_t key = cursor->Key();
      ASSERT_TRUE(cursor->SeekGE(key));
      ASSERT_EQ(cursor->Key(), key);
    }
  }
  ASSERT_EQ(ref_pos, reference.size());
}

TEST(PostingCursorConformanceTest, BothImplementationsHonorTheContract) {
  std::mt19937 rng(29);
  for (size_t count : {0u, 1u, 127u, 128u, 129u, 1000u, 4000u}) {
    for (uint32_t max_gap : {1u, 7u, 5000u}) {
      std::vector<uint32_t> keys = RandomKeys(&rng, count, max_gap);
      if (count == 0) keys.clear();
      PostingBlocks blocks = PostingBlocks::FromSorted(keys);
      Arena arena;
      PostingStats stats;

      VectorPostingCursor vector_cursor{std::span<const uint32_t>(keys)};
      RunConformance(&vector_cursor, keys, &rng);

      BlockPostingCursor block_cursor(blocks, &arena, &stats);
      RunConformance(&block_cursor, keys, &rng);
    }
  }
}

TEST(PostingCursorConformanceTest, SeekSkipsBlocksUndecoded) {
  std::vector<uint32_t> keys;
  for (uint32_t i = 0; i < 128 * 10; ++i) keys.push_back(i * 3);
  PostingBlocks blocks = PostingBlocks::FromSorted(keys);
  ASSERT_EQ(blocks.num_blocks(), 10u);
  Arena arena;
  PostingStats stats;
  PostingBlocks::Cursor cursor = blocks.NewCursor(&arena, &stats);
  ASSERT_EQ(stats.blocks_decoded, 1u);  // the opening block
  ASSERT_TRUE(cursor.SeekGE(keys[128 * 9]));  // into the last block
  EXPECT_EQ(cursor.Key(), keys[128 * 9]);
  EXPECT_EQ(stats.blocks_decoded, 2u);
  EXPECT_EQ(stats.blocks_skipped, 8u);
  EXPECT_GT(stats.bytes_decoded, 0u);
}

}  // namespace
}  // namespace lotusx::index
