#include <gtest/gtest.h>

#include "autocomplete/completion.h"
#include "datagen/datagen.h"
#include "tests/test_util.h"
#include "twig/query_parser.h"

namespace lotusx::autocomplete {
namespace {

using lotusx::testing::MustIndex;
using twig::Axis;
using twig::TwigQuery;

constexpr std::string_view kStoreXml = R"(<store>
  <name>main store</name>
  <category>
    <name>books</name>
    <product sku="p1">
      <name>xml handbook</name>
      <brand>acme</brand>
      <price>30.00</price>
      <review><rating>5</rating><comment>great xml content</comment></review>
    </product>
    <product sku="p2">
      <name>twig poster</name>
      <brand>zeta</brand>
      <price>5.00</price>
    </product>
  </category>
  <category>
    <name>music</name>
    <album id="m1">
      <name>lotus songs</name>
      <artist>acme band</artist>
    </album>
  </category>
</store>)";

TwigQuery Q(std::string_view text) {
  auto result = twig::ParseQuery(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

std::vector<std::string> Texts(const std::vector<Candidate>& candidates) {
  std::vector<std::string> texts;
  for (const Candidate& candidate : candidates) {
    texts.push_back(candidate.text);
  }
  return texts;
}

// --------------------------------------------------------- SchemaBindings

TEST(SchemaBindingsTest, SingleNodeBindsAllItsPaths) {
  auto indexed = MustIndex(kStoreXml);
  CompletionEngine engine(indexed);
  // "name" occurs at 5 distinct paths: store/name, category/name,
  // product/name, album/name... store/category/name and
  // store/category/product/name and store/category/album/name -> 4.
  auto bindings = engine.SchemaBindings(Q("//name"));
  EXPECT_EQ(bindings[0].size(), 4u);
}

TEST(SchemaBindingsTest, StructureRestrictsBindings) {
  auto indexed = MustIndex(kStoreXml);
  CompletionEngine engine(indexed);
  // name under product: exactly one path.
  auto bindings = engine.SchemaBindings(Q("//product/name"));
  ASSERT_EQ(bindings.size(), 2u);
  EXPECT_EQ(bindings[0].size(), 1u);  // product path
  EXPECT_EQ(bindings[1].size(), 1u);  // product/name path
  const index::DataGuide& guide = indexed.dataguide();
  EXPECT_EQ(guide.PathString(indexed.document(), bindings[1][0]),
            "/store/category/product/name");
}

TEST(SchemaBindingsTest, BranchesConstrainEachOther) {
  auto indexed = MustIndex(kStoreXml);
  CompletionEngine engine(indexed);
  // A node with both brand and review children must be a product; name
  // under it binds only to the product name path.
  auto bindings = engine.SchemaBindings(Q("//*[brand][review]/name"));
  EXPECT_EQ(bindings[3].size(), 1u);
  // With an artist child it must be an album.
  auto album = engine.SchemaBindings(Q("//*[artist]/name"));
  ASSERT_EQ(album[0].size(), 1u);
  EXPECT_EQ(indexed.dataguide().PathString(indexed.document(), album[0][0]),
            "/store/category/album");
}

TEST(SchemaBindingsTest, UnsatisfiableQueryHasEmptyBindings) {
  auto indexed = MustIndex(kStoreXml);
  CompletionEngine engine(indexed);
  auto bindings = engine.SchemaBindings(Q("//album/brand"));
  EXPECT_TRUE(bindings[0].empty());
  EXPECT_TRUE(bindings[1].empty());
}

TEST(SchemaBindingsTest, RootAxisAnchorsToDocumentRoot) {
  auto indexed = MustIndex(kStoreXml);
  CompletionEngine engine(indexed);
  EXPECT_EQ(engine.SchemaBindings(Q("/store"))[0].size(), 1u);
  EXPECT_TRUE(engine.SchemaBindings(Q("/category"))[0].empty());
  EXPECT_EQ(engine.SchemaBindings(Q("//category"))[0].size(), 1u);
}

TEST(SchemaBindingsTest, ValuePredicateRequiresText) {
  auto indexed = MustIndex("<r><a><b>text</b></a><a><c/></a></r>");
  CompletionEngine engine(indexed);
  TwigQuery with_value = Q(R"(//c[~"x"])");
  // c has no text: no path qualifies.
  EXPECT_TRUE(engine.SchemaBindings(with_value)[0].empty());
  TwigQuery b_value = Q(R"(//b[~"text"])");
  EXPECT_EQ(engine.SchemaBindings(b_value)[0].size(), 1u);
}

// ------------------------------------------------------------ CompleteTag

TEST(CompleteTagTest, RootSuggestionsGlobal) {
  auto indexed = MustIndex(kStoreXml);
  CompletionEngine engine(indexed);
  TagRequest request;
  request.axis = Axis::kDescendant;
  request.limit = 3;
  auto candidates = engine.CompleteTag(TwigQuery(), request);
  ASSERT_TRUE(candidates.ok());
  ASSERT_EQ(candidates->size(), 3u);
  // "name" is the most frequent tag (6 occurrences).
  EXPECT_EQ((*candidates)[0].text, "name");
  EXPECT_EQ((*candidates)[0].frequency, 6u);
}

TEST(CompleteTagTest, RootChildAxisSuggestsDocumentRootOnly) {
  auto indexed = MustIndex(kStoreXml);
  CompletionEngine engine(indexed);
  TagRequest request;
  request.axis = Axis::kChild;
  auto candidates = engine.CompleteTag(TwigQuery(), request);
  ASSERT_TRUE(candidates.ok());
  ASSERT_EQ(candidates->size(), 1u);
  EXPECT_EQ((*candidates)[0].text, "store");
}

TEST(CompleteTagTest, PositionAwareChildSuggestions) {
  auto indexed = MustIndex(kStoreXml);
  CompletionEngine engine(indexed);
  TwigQuery query = Q("//product");
  TagRequest request;
  request.anchor = 0;
  request.axis = Axis::kChild;
  auto candidates = engine.CompleteTag(query, request);
  ASSERT_TRUE(candidates.ok());
  std::vector<std::string> texts = Texts(*candidates);
  // Children of product paths only.
  EXPECT_NE(std::find(texts.begin(), texts.end(), "brand"), texts.end());
  EXPECT_NE(std::find(texts.begin(), texts.end(), "@sku"), texts.end());
  // artist/category are NOT possible under product.
  EXPECT_EQ(std::find(texts.begin(), texts.end(), "artist"), texts.end());
  EXPECT_EQ(std::find(texts.begin(), texts.end(), "category"), texts.end());
}

TEST(CompleteTagTest, DescendantIncludesDeeperTags) {
  auto indexed = MustIndex(kStoreXml);
  CompletionEngine engine(indexed);
  TwigQuery query = Q("//product");
  TagRequest request;
  request.anchor = 0;
  request.axis = Axis::kDescendant;
  auto candidates = engine.CompleteTag(query, request);
  ASSERT_TRUE(candidates.ok());
  std::vector<std::string> texts = Texts(*candidates);
  EXPECT_NE(std::find(texts.begin(), texts.end(), "rating"), texts.end());
}

TEST(CompleteTagTest, PrefixFilters) {
  auto indexed = MustIndex(kStoreXml);
  CompletionEngine engine(indexed);
  TwigQuery query = Q("//product");
  TagRequest request;
  request.anchor = 0;
  request.axis = Axis::kChild;
  request.prefix = "pr";
  auto candidates = engine.CompleteTag(query, request);
  ASSERT_TRUE(candidates.ok());
  EXPECT_EQ(Texts(*candidates), (std::vector<std::string>{"price"}));
}

TEST(CompleteTagTest, ContextFromSiblingBranchesNarrowsCandidates) {
  auto indexed = MustIndex(kStoreXml);
  CompletionEngine engine(indexed);
  // Anchor is a wildcard with an artist child: it must be an album, so
  // child suggestions must come from album paths only.
  TwigQuery query = Q("//*[artist]");
  TagRequest request;
  request.anchor = 0;
  request.axis = Axis::kChild;
  auto candidates = engine.CompleteTag(query, request);
  ASSERT_TRUE(candidates.ok());
  std::vector<std::string> texts = Texts(*candidates);
  EXPECT_NE(std::find(texts.begin(), texts.end(), "name"), texts.end());
  EXPECT_NE(std::find(texts.begin(), texts.end(), "@id"), texts.end());
  EXPECT_EQ(std::find(texts.begin(), texts.end(), "price"), texts.end());
}

TEST(CompleteTagTest, GlobalBaselineIgnoresPosition) {
  auto indexed = MustIndex(kStoreXml);
  CompletionEngine engine(indexed);
  TwigQuery query = Q("//album");
  TagRequest request;
  request.anchor = 0;
  request.axis = Axis::kChild;
  request.position_aware = false;
  auto candidates = engine.CompleteTag(query, request);
  ASSERT_TRUE(candidates.ok());
  std::vector<std::string> texts = Texts(*candidates);
  // The global baseline happily suggests "price" under album.
  EXPECT_NE(std::find(texts.begin(), texts.end(), "price"), texts.end());
}

TEST(CompleteTagTest, EveryPositionAwareCandidateIsSatisfiable) {
  datagen::StoreOptions options;
  options.num_products = 60;
  index::IndexedDocument indexed(datagen::GenerateStore(options));
  CompletionEngine engine(indexed);
  for (std::string_view anchor_query :
       {"//product", "//category", "//review", "//store", "//*[rating]"}) {
    TwigQuery query = Q(anchor_query);
    for (Axis axis : {Axis::kChild, Axis::kDescendant}) {
      TagRequest request;
      request.anchor = 0;
      request.axis = axis;
      request.limit = 100;
      auto candidates = engine.CompleteTag(query, request);
      ASSERT_TRUE(candidates.ok());
      for (const Candidate& candidate : *candidates) {
        EXPECT_TRUE(
            engine.ExtensionIsSatisfiable(query, 0, axis, candidate.text))
            << anchor_query << " + " << candidate.text;
      }
    }
  }
}

TEST(CompleteTagTest, InvalidAnchorRejected) {
  auto indexed = MustIndex(kStoreXml);
  CompletionEngine engine(indexed);
  TwigQuery query = Q("//product");
  TagRequest request;
  request.anchor = 5;
  EXPECT_FALSE(engine.CompleteTag(query, request).ok());
}

// ---------------------------------------------------------- CompleteValue

TEST(CompleteValueTest, PerTagTerms) {
  auto indexed = MustIndex(kStoreXml);
  CompletionEngine engine(indexed);
  TwigQuery query = Q("//product/name");
  auto candidates =
      engine.CompleteValue(query, 1, "", 10, /*position_aware=*/true);
  ASSERT_TRUE(candidates.ok());
  std::vector<std::string> texts = Texts(*candidates);
  // Terms of name values anywhere (per-tag granularity): includes "xml"
  // and "twig" but never "acme" (a brand term) or "great" (a comment).
  EXPECT_NE(std::find(texts.begin(), texts.end(), "xml"), texts.end());
  EXPECT_EQ(std::find(texts.begin(), texts.end(), "acme"), texts.end());
  EXPECT_EQ(std::find(texts.begin(), texts.end(), "great"), texts.end());
}

TEST(CompleteValueTest, PrefixAndCase) {
  auto indexed = MustIndex(kStoreXml);
  CompletionEngine engine(indexed);
  TwigQuery query = Q("//comment");
  auto candidates =
      engine.CompleteValue(query, 0, "GR", 10, /*position_aware=*/true);
  ASSERT_TRUE(candidates.ok());
  EXPECT_EQ(Texts(*candidates), (std::vector<std::string>{"great"}));
}

TEST(CompleteValueTest, UnsatisfiablePositionYieldsNothing) {
  auto indexed = MustIndex(kStoreXml);
  CompletionEngine engine(indexed);
  // brand under album is unsatisfiable.
  TwigQuery query = Q("//album/brand");
  auto candidates =
      engine.CompleteValue(query, 1, "", 10, /*position_aware=*/true);
  ASSERT_TRUE(candidates.ok());
  EXPECT_TRUE(candidates->empty());
}

TEST(CompleteValueTest, GlobalFallback) {
  auto indexed = MustIndex(kStoreXml);
  CompletionEngine engine(indexed);
  TwigQuery query = Q("//album/name");
  auto candidates =
      engine.CompleteValue(query, 1, "gr", 10, /*position_aware=*/false);
  ASSERT_TRUE(candidates.ok());
  // Global: "great" appears even though it never occurs in a name.
  EXPECT_EQ(Texts(*candidates), (std::vector<std::string>{"great"}));
}

// ---------------------------------------------------- Case sensitivity
// Pins the documented contract (completion.h): tag prefixes match
// case-sensitively (XML names are case-sensitive), value prefixes match
// case-insensitively (terms are stored lowercased).

TEST(CaseSensitivityTest, TagPrefixIsCaseSensitivePositionAware) {
  auto indexed = MustIndex(kStoreXml);
  CompletionEngine engine(indexed);
  TwigQuery query = Q("//product");
  TagRequest request;
  request.anchor = 0;
  request.axis = Axis::kChild;
  request.prefix = "PR";  // "price" must NOT match
  auto candidates = engine.CompleteTag(query, request);
  ASSERT_TRUE(candidates.ok());
  EXPECT_TRUE(candidates->empty());
  request.prefix = "pr";
  candidates = engine.CompleteTag(query, request);
  ASSERT_TRUE(candidates.ok());
  EXPECT_EQ(Texts(*candidates), (std::vector<std::string>{"price"}));
}

TEST(CaseSensitivityTest, TagPrefixIsCaseSensitiveGlobal) {
  auto indexed = MustIndex(kStoreXml);
  CompletionEngine engine(indexed);
  TagRequest request;
  request.prefix = "NAME";
  request.position_aware = false;
  auto candidates = engine.CompleteTag(TwigQuery(), request);
  ASSERT_TRUE(candidates.ok());
  EXPECT_TRUE(candidates->empty());
}

TEST(CaseSensitivityTest, ValuePrefixIsCaseInsensitive) {
  auto indexed = MustIndex(kStoreXml);
  CompletionEngine engine(indexed);
  TwigQuery query = Q("//comment");
  auto upper = engine.CompleteValue(query, 0, "GREAT", 10,
                                    /*position_aware=*/true);
  ASSERT_TRUE(upper.ok());
  EXPECT_EQ(Texts(*upper), (std::vector<std::string>{"great"}));
  auto lower = engine.CompleteValue(query, 0, "great", 10,
                                    /*position_aware=*/true);
  ASSERT_TRUE(lower.ok());
  EXPECT_EQ(Texts(*upper), Texts(*lower));
}

}  // namespace
}  // namespace lotusx::autocomplete
