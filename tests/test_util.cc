#include "tests/test_util.h"

#include <algorithm>

#include "common/logging.h"
#include "twig/candidates.h"
#include "twig/order_filter.h"

namespace lotusx::testing {

xml::Document MustParse(std::string_view xml) {
  auto result = xml::ParseDocument(xml);
  CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

index::IndexedDocument MustIndex(std::string_view xml) {
  return index::IndexedDocument(MustParse(xml));
}

namespace {

/// Recursively extends `bindings` by assigning query node `q`.
void Assign(const index::IndexedDocument& indexed,
            const twig::TwigQuery& query, twig::QueryNodeId q,
            std::vector<xml::NodeId>* bindings,
            std::vector<twig::Match>* out) {
  const xml::Document& document = indexed.document();
  const twig::QueryNode& node = query.node(q);
  // Candidate document nodes for q.
  for (xml::NodeId id = 0; id < document.num_nodes(); ++id) {
    if (!twig::NodeSatisfies(indexed, query, q, id)) continue;
    // Structural constraint vs the already-bound parent.
    if (node.parent == twig::kInvalidQueryNode) {
      if (query.root_axis() == twig::Axis::kChild &&
          id != document.root()) {
        continue;
      }
    } else {
      xml::NodeId parent_binding =
          (*bindings)[static_cast<size_t>(node.parent)];
      if (node.incoming_axis == twig::Axis::kChild) {
        if (document.node(id).parent != parent_binding) continue;
      } else {
        if (!document.IsAncestor(parent_binding, id)) continue;
      }
    }
    (*bindings)[static_cast<size_t>(q)] = id;
    if (q + 1 == query.size()) {
      twig::Match match;
      match.bindings = *bindings;
      out->push_back(std::move(match));
    } else {
      Assign(indexed, query, q + 1, bindings, out);
    }
    (*bindings)[static_cast<size_t>(q)] = xml::kInvalidNodeId;
  }
}

}  // namespace

std::vector<twig::Match> BruteForceMatches(
    const index::IndexedDocument& indexed, const twig::TwigQuery& query,
    bool apply_order) {
  std::vector<twig::Match> matches;
  std::vector<xml::NodeId> bindings(static_cast<size_t>(query.size()),
                                    xml::kInvalidNodeId);
  Assign(indexed, query, 0, &bindings, &matches);
  if (apply_order) {
    twig::FilterByOrder(indexed.document(), query, &matches);
  }
  std::sort(matches.begin(), matches.end());
  return matches;
}

}  // namespace lotusx::testing
