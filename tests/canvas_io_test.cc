#include <gtest/gtest.h>

#include "session/canvas_io.h"
#include "session/protocol.h"
#include "session/session.h"
#include "tests/test_util.h"

namespace lotusx::session {
namespace {

using lotusx::testing::MustIndex;

Canvas MakeCanvas() {
  Canvas canvas;
  CanvasNodeId article = canvas.AddNode(50.5, 0, "article");
  CanvasNodeId author = canvas.AddNode(-10, 120, "author");
  CanvasNodeId title = canvas.AddNode(120, 120.25, "title");
  EXPECT_TRUE(canvas.Connect(article, author, twig::Axis::kChild).ok());
  EXPECT_TRUE(canvas.Connect(article, title, twig::Axis::kDescendant).ok());
  EXPECT_TRUE(canvas.SetOrdered(article, true).ok());
  EXPECT_TRUE(canvas.SetOutput(title).ok());
  EXPECT_TRUE(canvas
                  .SetPredicate(author,
                                {twig::ValuePredicate::Op::kContains,
                                 "jiaheng lu"})
                  .ok());
  return canvas;
}

void ExpectSameCanvas(const Canvas& a, const Canvas& b) {
  ASSERT_EQ(a.nodes().size(), b.nodes().size());
  for (const CanvasNode& node : a.nodes()) {
    const CanvasNode* other = b.FindNode(node.id);
    ASSERT_NE(other, nullptr) << "missing box " << node.id;
    EXPECT_DOUBLE_EQ(other->x, node.x);
    EXPECT_DOUBLE_EQ(other->y, node.y);
    EXPECT_EQ(other->tag, node.tag);
    EXPECT_EQ(other->ordered, node.ordered);
    EXPECT_EQ(other->output, node.output);
    EXPECT_EQ(other->predicate, node.predicate);
  }
  ASSERT_EQ(a.edges().size(), b.edges().size());
  for (size_t i = 0; i < a.edges().size(); ++i) {
    EXPECT_EQ(a.edges()[i].from, b.edges()[i].from);
    EXPECT_EQ(a.edges()[i].to, b.edges()[i].to);
    EXPECT_EQ(a.edges()[i].axis, b.edges()[i].axis);
  }
}

TEST(CanvasIoTest, RoundTripPreservesEverything) {
  Canvas original = MakeCanvas();
  std::string xml = SerializeCanvas(original);
  auto restored = DeserializeCanvas(xml);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString() << "\n" << xml;
  ExpectSameCanvas(original, *restored);
  // The restored canvas compiles to the same query.
  EXPECT_EQ(restored->Compile()->ToString(),
            original.Compile()->ToString());
}

TEST(CanvasIoTest, RestoredCanvasContinuesIdAssignment) {
  Canvas original = MakeCanvas();
  auto restored = DeserializeCanvas(SerializeCanvas(original));
  ASSERT_TRUE(restored.ok());
  CanvasNodeId fresh = restored->AddNode(0, 0, "new");
  EXPECT_GT(fresh, 3);  // must not collide with restored ids 1..3
}

TEST(CanvasIoTest, EmptyAndUntaggedBoxesSurvive) {
  Canvas canvas;
  canvas.AddNode(1, 2);  // still typing: empty tag
  auto restored = DeserializeCanvas(SerializeCanvas(canvas));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored->nodes().size(), 1u);
  EXPECT_TRUE(restored->nodes()[0].tag.empty());
  Canvas empty;
  EXPECT_TRUE(DeserializeCanvas(SerializeCanvas(empty)).ok());
}

TEST(CanvasIoTest, RejectsGarbage) {
  EXPECT_FALSE(DeserializeCanvas("not xml").ok());
  EXPECT_FALSE(DeserializeCanvas("<other/>").ok());
  EXPECT_FALSE(DeserializeCanvas("<canvas><blob/></canvas>").ok());
  EXPECT_FALSE(
      DeserializeCanvas(R"(<canvas><box id="x" x="0" y="0"/></canvas>)")
          .ok());
  EXPECT_FALSE(
      DeserializeCanvas(R"(<canvas><box id="1" x="0" y="0"/>)"
                        R"(<box id="1" x="0" y="0"/></canvas>)")
          .ok());
  EXPECT_FALSE(DeserializeCanvas(
                   R"(<canvas><edge from="1" to="2" axis="/"/></canvas>)")
                   .ok());
  EXPECT_FALSE(DeserializeCanvas(
                   R"(<canvas><box id="1" x="0" y="0"/>)"
                   R"(<box id="2" x="0" y="0"/>)"
                   R"(<edge from="1" to="2" axis="|"/></canvas>)")
                   .ok());
}

TEST(CanvasIoTest, FileRoundTrip) {
  Canvas original = MakeCanvas();
  std::string path = ::testing::TempDir() + "/lotusx_canvas.xml";
  ASSERT_TRUE(SaveCanvasToFile(original, path).ok());
  auto restored = LoadCanvasFromFile(path);
  ASSERT_TRUE(restored.ok());
  ExpectSameCanvas(original, *restored);
  std::remove(path.c_str());
  EXPECT_FALSE(LoadCanvasFromFile(path).ok());
}

TEST(CanvasIoTest, ProtocolSaveAndLoad) {
  auto indexed = MustIndex("<r><a><b>x</b></a></r>");
  Session session(indexed);
  ProtocolInterpreter interpreter(&session);
  ASSERT_TRUE(interpreter.Execute("ADD 0 0 a").ok());
  ASSERT_TRUE(interpreter.Execute("ADD 0 100 b").ok());
  ASSERT_TRUE(interpreter.Execute("EDGE 1 2 /").ok());
  std::string path = ::testing::TempDir() + "/lotusx_proto_canvas.xml";
  auto saved = interpreter.Execute("SAVECANVAS " + path);
  ASSERT_TRUE(saved.ok()) << saved.status().ToString();
  ASSERT_TRUE(interpreter.Execute("RESET").ok());
  EXPECT_TRUE(session.canvas().empty());
  auto loaded = interpreter.Execute("LOADCANVAS " + path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  auto query = interpreter.Execute("QUERY");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(*query, "//a!/b");  // no OUTPUT set: root is the output
  std::remove(path.c_str());
}

// --------------------------------------------------------- Query history

TEST(QueryHistoryTest, RecordsExecutedQueries) {
  auto indexed = MustIndex("<r><a><b>x</b></a></r>");
  Session session(indexed);
  EXPECT_TRUE(session.QueryHistory("").empty());
  CanvasNodeId a = session.canvas().AddNode(0, 0, "a");
  CanvasNodeId b = session.canvas().AddNode(0, 100, "b");
  ASSERT_TRUE(session.canvas().Connect(a, b, twig::Axis::kChild).ok());
  ASSERT_TRUE(session.Run().ok());
  ASSERT_TRUE(session.Run().ok());  // executed twice
  std::vector<std::string> history = session.QueryHistory("");
  ASSERT_EQ(history.size(), 1u);
  EXPECT_EQ(history[0], "//a!/b");  // root is the default output
  // Prefix filter.
  EXPECT_TRUE(session.QueryHistory("//z").empty());
  EXPECT_EQ(session.QueryHistory("//a").size(), 1u);
}

TEST(QueryHistoryTest, ProtocolHistoryCommand) {
  auto indexed = MustIndex("<r><a><b>x</b></a></r>");
  Session session(indexed);
  ProtocolInterpreter interpreter(&session);
  auto empty = interpreter.Execute("HISTORY");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(*empty, "(no history)");
  ASSERT_TRUE(interpreter.Execute("ADD 0 0 a").ok());
  ASSERT_TRUE(interpreter.Execute("RUN").ok());
  auto history = interpreter.Execute("HISTORY");
  ASSERT_TRUE(history.ok());
  EXPECT_NE(history->find("//a"), std::string::npos) << *history;
}

}  // namespace
}  // namespace lotusx::session
