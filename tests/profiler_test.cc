// Pins the sampling profiler's observable contract (common/profiler.h):
// non-empty flamegraph-format stacks when the process is busy, strict
// quiescence (zero SIGPROF deliveries) when no profile is armed,
// single-flight rejection, and wall-mode coverage of registered
// threads. Deliberately NOT run under tsan in CI — signal-driven
// backtraces inside instrumented code are out of scope for the
// statement-store race suites.

#include "common/profiler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/status_or.h"

namespace lotusx::prof {
namespace {

/// Burns CPU until `stop` is raised; the volatile sink keeps the loop
/// from being optimized into nothing.
void SpinUntil(const std::atomic<bool>& stop) {
  volatile uint64_t sink = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    for (int i = 0; i < 4096; ++i) sink = sink * 2862933555777941757ULL + 1;
  }
}

/// Every collapsed line is "frame;frame;...;leaf count".
void ExpectFlamegraphFormat(const std::string& collapsed) {
  ASSERT_FALSE(collapsed.empty());
  size_t start = 0;
  while (start < collapsed.size()) {
    size_t end = collapsed.find('\n', start);
    if (end == std::string::npos) end = collapsed.size();
    const std::string line = collapsed.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_GT(space, 0u) << line;
    const std::string count = line.substr(space + 1);
    ASSERT_FALSE(count.empty()) << line;
    for (char c : count) {
      EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(c))) << line;
    }
  }
}

TEST(ProfilerTest, CpuProfileUnderLoadYieldsStacks) {
  std::atomic<bool> stop{false};
  std::vector<std::thread> burners;
  for (int i = 0; i < 2; ++i) burners.emplace_back([&stop] { SpinUntil(stop); });

  StatusOr<ProfileResult> profile = Collect(Mode::kCpu, /*duration_ms=*/400);
  stop.store(true);
  for (std::thread& thread : burners) thread.join();

  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_EQ(profile->mode, Mode::kCpu);
  EXPECT_GT(profile->samples, 0u)
      << "two spinning threads over 400ms at 99Hz must be sampled";
  EXPECT_FALSE(profile->collapsed.empty());

  const std::string collapsed = RenderCollapsed(*profile);
  ExpectFlamegraphFormat(collapsed);

  const std::string json = RenderProfileJson(*profile);
  EXPECT_NE(json.find("\"mode\":\"cpu\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"samples\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"stacks\":"), std::string::npos) << json;
}

TEST(ProfilerTest, WallProfileSamplesRegisteredThreads) {
  // A registered thread blocked in sleep is invisible to CPU mode but
  // is exactly what wall mode exists to show.
  std::atomic<bool> stop{false};
  std::thread sleeper([&stop] {
    ScopedThreadRegistration registration("sleeper");
    while (!stop.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  // Give the sleeper a beat to register.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  StatusOr<ProfileResult> profile = Collect(Mode::kWall, /*duration_ms=*/200);
  stop.store(true);
  sleeper.join();

  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_GT(profile->samples, 0u);
  const std::string collapsed = RenderCollapsed(*profile);
  ExpectFlamegraphFormat(collapsed);
  EXPECT_NE(collapsed.find("sleeper"), std::string::npos)
      << "registered thread name must prefix its stacks:\n"
      << collapsed;
}

TEST(ProfilerTest, WallModeWithoutRegisteredThreadsFailsCleanly) {
  StatusOr<ProfileResult> profile = Collect(Mode::kWall, /*duration_ms=*/20);
  EXPECT_FALSE(profile.ok());
}

TEST(ProfilerTest, QuiescentWhenNotArmed) {
  // Prime: one short profile proves the machinery works, then the
  // counter must FREEZE while no profile is armed — even under load.
  std::atomic<bool> stop{false};
  std::thread burner([&stop] { SpinUntil(stop); });
  ASSERT_TRUE(Collect(Mode::kCpu, /*duration_ms=*/50).ok());

  const uint64_t signals_after_disarm = SignalsDelivered();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  burner.join();
  EXPECT_EQ(SignalsDelivered(), signals_after_disarm)
      << "SIGPROF delivered while no profile was armed";
}

TEST(ProfilerTest, SecondCollectorIsRejectedNotQueued) {
  std::atomic<bool> stop{false};
  std::thread burner([&stop] { SpinUntil(stop); });

  std::thread collector([] {
    StatusOr<ProfileResult> profile = Collect(Mode::kCpu, /*duration_ms=*/400);
    EXPECT_TRUE(profile.ok()) << profile.status().ToString();
  });
  // Wait for the first collection to arm.
  while (!Busy()) std::this_thread::sleep_for(std::chrono::milliseconds(1));

  StatusOr<ProfileResult> second = Collect(Mode::kCpu, /*duration_ms=*/50);
  EXPECT_FALSE(second.ok()) << "concurrent profiles must not queue";

  collector.join();
  stop.store(true);
  burner.join();
  EXPECT_FALSE(Busy());
}

TEST(ProfilerTest, DurationAndFrequencyAreClamped) {
  std::atomic<bool> stop{false};
  std::thread burner([&stop] { SpinUntil(stop); });
  // 0ms clamps to the 10ms floor; 0Hz clamps to 1Hz: both must collect
  // (possibly zero samples at 1Hz-for-10ms, but never fail or hang).
  StatusOr<ProfileResult> profile = Collect(Mode::kCpu, /*duration_ms=*/0,
                                            /*hz=*/0);
  stop.store(true);
  burner.join();
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_GE(profile->duration_ms, 10.0);
  EXPECT_GE(profile->frequency_hz, 1);
}

}  // namespace
}  // namespace lotusx::prof
