#include <gtest/gtest.h>

#include "twig/query_parser.h"
#include "twig/twig_query.h"

namespace lotusx::twig {
namespace {

TwigQuery MustParseQuery(std::string_view text) {
  auto result = ParseQuery(text);
  EXPECT_TRUE(result.ok()) << text << " -> " << result.status().ToString();
  return std::move(result).value();
}

// ------------------------------------------------------------- TwigQuery

TEST(TwigQueryTest, BuildProgrammatically) {
  TwigQuery query;
  QueryNodeId book = query.AddRoot("book");
  QueryNodeId title = query.AddChild(book, Axis::kChild, "title");
  QueryNodeId author = query.AddChild(book, Axis::kDescendant, "author");
  query.SetOutput(title);
  EXPECT_EQ(query.size(), 3);
  EXPECT_EQ(query.output(), title);
  EXPECT_EQ(query.node(author).incoming_axis, Axis::kDescendant);
  EXPECT_TRUE(query.Validate().ok());
  EXPECT_FALSE(query.IsPath());
  EXPECT_EQ(query.Leaves(), (std::vector<QueryNodeId>{title, author}));
}

TEST(TwigQueryTest, ValidateRejectsBadQueries) {
  TwigQuery empty;
  EXPECT_TRUE(empty.Validate().IsInvalidArgument());

  TwigQuery wildcard_eq;
  QueryNodeId node = wildcard_eq.AddRoot("*");
  wildcard_eq.SetPredicate(
      node, ValuePredicate{ValuePredicate::Op::kEquals, "x"});
  EXPECT_TRUE(wildcard_eq.Validate().IsInvalidArgument());
}

TEST(TwigQueryTest, DefaultOutputIsRoot) {
  TwigQuery query;
  query.AddRoot("a");
  query.AddChild(0, Axis::kChild, "b");
  EXPECT_EQ(query.output(), 0);
}

TEST(TwigQueryTest, RootToLeafPaths) {
  TwigQuery query;
  QueryNodeId a = query.AddRoot("a");
  QueryNodeId b = query.AddChild(a, Axis::kChild, "b");
  QueryNodeId c = query.AddChild(b, Axis::kChild, "c");
  QueryNodeId d = query.AddChild(a, Axis::kDescendant, "d");
  std::vector<std::vector<QueryNodeId>> paths = query.RootToLeafPaths();
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0], (std::vector<QueryNodeId>{a, b, c}));
  EXPECT_EQ(paths[1], (std::vector<QueryNodeId>{a, d}));
}

TEST(TwigQueryTest, HasOrderConstraintsNeedsTwoChildren) {
  TwigQuery query;
  QueryNodeId a = query.AddRoot("a");
  query.AddChild(a, Axis::kChild, "b");
  query.SetOrdered(a, true);
  EXPECT_FALSE(query.HasOrderConstraints());  // single child: vacuous
  query.AddChild(a, Axis::kChild, "c");
  EXPECT_TRUE(query.HasOrderConstraints());
}

// ---------------------------------------------------------------- Parser

TEST(QueryParserTest, SimplePath) {
  TwigQuery query = MustParseQuery("//book/title");
  ASSERT_EQ(query.size(), 2);
  EXPECT_EQ(query.node(0).tag, "book");
  EXPECT_EQ(query.root_axis(), Axis::kDescendant);
  EXPECT_EQ(query.node(1).tag, "title");
  EXPECT_EQ(query.node(1).incoming_axis, Axis::kChild);
  EXPECT_EQ(query.output(), 1);  // last spine step by default
  EXPECT_TRUE(query.IsPath());
}

TEST(QueryParserTest, AbsoluteRoot) {
  TwigQuery query = MustParseQuery("/dblp//author");
  EXPECT_EQ(query.root_axis(), Axis::kChild);
  EXPECT_EQ(query.node(1).incoming_axis, Axis::kDescendant);
}

TEST(QueryParserTest, Branches) {
  TwigQuery query = MustParseQuery("//book[author][//year]/title");
  ASSERT_EQ(query.size(), 4);
  EXPECT_EQ(query.node(0).tag, "book");
  EXPECT_EQ(query.node(1).tag, "author");
  EXPECT_EQ(query.node(1).incoming_axis, Axis::kChild);
  EXPECT_EQ(query.node(2).tag, "year");
  EXPECT_EQ(query.node(2).incoming_axis, Axis::kDescendant);
  EXPECT_EQ(query.node(3).tag, "title");
  EXPECT_EQ(query.output(), 3);
}

TEST(QueryParserTest, MultiStepBranch) {
  TwigQuery query = MustParseQuery("//a[b/c//d]/e");
  ASSERT_EQ(query.size(), 5);
  EXPECT_EQ(query.node(1).tag, "b");
  EXPECT_EQ(query.node(2).tag, "c");
  EXPECT_EQ(query.node(2).parent, 1);
  EXPECT_EQ(query.node(3).tag, "d");
  EXPECT_EQ(query.node(3).incoming_axis, Axis::kDescendant);
  EXPECT_EQ(query.node(4).tag, "e");
  EXPECT_EQ(query.node(4).parent, 0);
}

TEST(QueryParserTest, ValuePredicates) {
  TwigQuery query = MustParseQuery(R"(//book[year[="2012"]]/title[~"xml"])");
  ASSERT_EQ(query.size(), 3);
  EXPECT_EQ(query.node(1).predicate.op, ValuePredicate::Op::kEquals);
  EXPECT_EQ(query.node(1).predicate.text, "2012");
  EXPECT_EQ(query.node(2).predicate.op, ValuePredicate::Op::kContains);
  EXPECT_EQ(query.node(2).predicate.text, "xml");
}

TEST(QueryParserTest, StringEscapes) {
  TwigQuery query = MustParseQuery(R"(//t[="a\"b\\c"])");
  EXPECT_EQ(query.node(0).predicate.text, "a\"b\\c");
}

TEST(QueryParserTest, OrderedMarker) {
  TwigQuery query = MustParseQuery("//book[ordered][title][author]");
  EXPECT_TRUE(query.node(0).ordered);
  EXPECT_TRUE(query.HasOrderConstraints());
}

TEST(QueryParserTest, ExplicitOutputMarker) {
  TwigQuery query = MustParseQuery("//book[author!]/title");
  EXPECT_EQ(query.node(query.output()).tag, "author");
}

TEST(QueryParserTest, WildcardAndAttribute) {
  TwigQuery query = MustParseQuery("//*/@key");
  EXPECT_EQ(query.node(0).tag, "*");
  EXPECT_EQ(query.node(1).tag, "@key");
}

TEST(QueryParserTest, RejectsBadSyntax) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("book").ok());          // missing axis
  EXPECT_FALSE(ParseQuery("//").ok());            // missing name
  EXPECT_FALSE(ParseQuery("//a[").ok());          // unclosed qualifier
  EXPECT_FALSE(ParseQuery("//a[=]").ok());        // missing string
  EXPECT_FALSE(ParseQuery("//a[=\"x]").ok());     // unterminated string
  EXPECT_FALSE(ParseQuery("//a!//b!").ok());      // two output markers
  EXPECT_FALSE(ParseQuery("//a//").ok());         // trailing axis
  EXPECT_FALSE(ParseQuery("//@").ok());           // bare @
}

TEST(QueryParserTest, RejectsDoublePredicate) {
  EXPECT_FALSE(ParseQuery(R"(//a[="x"][="y"])").ok());
}

// ------------------------------------------------------------ Round trip

class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, ParseToStringParse) {
  TwigQuery query = MustParseQuery(GetParam());
  std::string rendered = query.ToString();
  TwigQuery reparsed = MustParseQuery(rendered);
  EXPECT_EQ(reparsed, query) << GetParam() << " -> " << rendered;
  // ToString must be a fixed point.
  EXPECT_EQ(reparsed.ToString(), rendered);
}

INSTANTIATE_TEST_SUITE_P(
    Queries, RoundTripTest,
    ::testing::Values(
        "//book/title", "/dblp//article", "//a[b][c]/d",
        R"(//book[year[="2012"]]/title)", R"(//t[~"xml twig"])",
        "//book[ordered][title][author]", "//a[b/c//d]/e",
        "//book[author!]/title", "//*/@key", "//a",
        R"(//product[brand[="acme"]][//rating]/name!)",
        "//site//item[payment][description//text]/name"));

}  // namespace
}  // namespace lotusx::twig
