#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "xml/writer.h"

namespace lotusx::datagen {
namespace {

TEST(DatagenTest, DblpIsDeterministic) {
  DblpOptions options;
  options.num_publications = 50;
  xml::Document a = GenerateDblp(options);
  xml::Document b = GenerateDblp(options);
  EXPECT_EQ(xml::WriteXml(a), xml::WriteXml(b));
}

TEST(DatagenTest, DblpSeedChangesContent) {
  DblpOptions a_options;
  a_options.num_publications = 50;
  DblpOptions b_options = a_options;
  b_options.seed = 43;
  EXPECT_NE(xml::WriteXml(GenerateDblp(a_options)),
            xml::WriteXml(GenerateDblp(b_options)));
}

TEST(DatagenTest, DblpStructure) {
  DblpOptions options;
  options.num_publications = 100;
  xml::Document doc = GenerateDblp(options);
  EXPECT_TRUE(doc.finalized());
  EXPECT_EQ(doc.TagName(doc.root()), "dblp");
  EXPECT_EQ(doc.Children(doc.root()).size(), 100u);
  // Every publication has a key attribute, >=1 author, title, year.
  for (xml::NodeId pub : doc.Children(doc.root())) {
    bool has_key = false;
    bool has_author = false;
    bool has_title = false;
    bool has_year = false;
    for (xml::NodeId child : doc.Children(pub)) {
      std::string_view tag = doc.TagName(child);
      has_key |= tag == "@key";
      has_author |= tag == "author";
      has_title |= tag == "title";
      has_year |= tag == "year";
    }
    EXPECT_TRUE(has_key && has_author && has_title && has_year);
  }
}

TEST(DatagenTest, StoreIsDeterministicAndOrdered) {
  StoreOptions options;
  options.num_products = 80;
  xml::Document a = GenerateStore(options);
  xml::Document b = GenerateStore(options);
  EXPECT_EQ(xml::WriteXml(a), xml::WriteXml(b));
  // All requested products exist, and name precedes brand precedes price
  // inside every product (the E4 order property).
  int products = 0;
  for (xml::NodeId id = 0; id < a.num_nodes(); ++id) {
    if (a.node(id).kind != xml::NodeKind::kElement ||
        a.TagName(id) != "product") {
      continue;
    }
    ++products;
    int name_pos = -1;
    int brand_pos = -1;
    int price_pos = -1;
    std::vector<xml::NodeId> children = a.Children(id);
    for (size_t i = 0; i < children.size(); ++i) {
      std::string_view tag = a.TagName(children[i]);
      if (tag == "name") name_pos = static_cast<int>(i);
      if (tag == "brand") brand_pos = static_cast<int>(i);
      if (tag == "price") price_pos = static_cast<int>(i);
    }
    ASSERT_GE(name_pos, 0);
    EXPECT_LT(name_pos, brand_pos);
    EXPECT_LT(brand_pos, price_pos);
  }
  EXPECT_EQ(products, 80);
}

TEST(DatagenTest, StoreHasHeterogeneousPaths) {
  StoreOptions options;
  options.num_products = 60;
  xml::Document doc = GenerateStore(options);
  // "name" occurs under store, category, and product — the path
  // heterogeneity that position-aware completion exploits.
  xml::TagId name = doc.FindTag("name");
  ASSERT_NE(name, xml::kInvalidTagId);
  std::set<xml::TagId> parents;
  for (xml::NodeId id = 0; id < doc.num_nodes(); ++id) {
    if (doc.node(id).kind == xml::NodeKind::kElement &&
        doc.node(id).tag == name) {
      parents.insert(doc.node(doc.node(id).parent).tag);
    }
  }
  EXPECT_GE(parents.size(), 3u);
}

TEST(DatagenTest, XmarkHasRecursiveParlists) {
  XmarkOptions options;
  options.num_items = 60;
  options.recursion_probability = 0.6;
  xml::Document doc = GenerateXmark(options);
  xml::TagId parlist = doc.FindTag("parlist");
  ASSERT_NE(parlist, xml::kInvalidTagId);
  bool nested = false;
  for (xml::NodeId id = 0; id < doc.num_nodes() && !nested; ++id) {
    if (doc.node(id).kind != xml::NodeKind::kElement ||
        doc.node(id).tag != parlist) {
      continue;
    }
    for (xml::NodeId walk = doc.node(id).parent;
         walk != xml::kInvalidNodeId; walk = doc.node(walk).parent) {
      if (doc.node(walk).kind == xml::NodeKind::kElement &&
          doc.node(walk).tag == parlist) {
        nested = true;
        break;
      }
    }
  }
  EXPECT_TRUE(nested) << "expected nested parlist at p=0.6";
}

TEST(DatagenTest, XmarkStructure) {
  XmarkOptions options;
  options.num_items = 30;
  options.num_people = 15;
  options.num_auctions = 12;
  xml::Document doc = GenerateXmark(options);
  EXPECT_EQ(doc.TagName(doc.root()), "site");
  // items spread across 6 regions.
  xml::TagId item = doc.FindTag("item");
  int items = 0;
  for (xml::NodeId id = 0; id < doc.num_nodes(); ++id) {
    if (doc.node(id).kind == xml::NodeKind::kElement &&
        doc.node(id).tag == item) {
      ++items;
    }
  }
  EXPECT_EQ(items, 30);
}

TEST(DatagenTest, TreebankIsDeepAndRecursive) {
  TreebankOptions options;
  options.num_sentences = 150;
  xml::Document doc = GenerateTreebank(options);
  EXPECT_EQ(xml::WriteXml(doc), xml::WriteXml(GenerateTreebank(options)));
  EXPECT_EQ(doc.TagName(doc.root()), "treebank");
  int32_t max_depth = 0;
  for (xml::NodeId id = 0; id < doc.num_nodes(); ++id) {
    max_depth = std::max(max_depth, doc.node(id).depth);
  }
  EXPECT_GE(max_depth, 8) << "treebank should be deep";
  // Same tag at multiple depths (recursion), e.g. np inside np.
  xml::TagId np = doc.FindTag("np");
  ASSERT_NE(np, xml::kInvalidTagId);
  bool nested = false;
  for (xml::NodeId id = 0; id < doc.num_nodes() && !nested; ++id) {
    if (doc.node(id).kind != xml::NodeKind::kElement ||
        doc.node(id).tag != np) {
      continue;
    }
    for (xml::NodeId walk = doc.node(id).parent;
         walk != xml::kInvalidNodeId; walk = doc.node(walk).parent) {
      if (doc.node(walk).kind == xml::NodeKind::kElement &&
          doc.node(walk).tag == np) {
        nested = true;
        break;
      }
    }
  }
  EXPECT_TRUE(nested);
}

TEST(DatagenTest, TreebankScaling) {
  xml::Document doc = GenerateTreebankWithApproxNodes(1, 10000);
  EXPECT_GT(doc.num_nodes(), 5000);
  EXPECT_LT(doc.num_nodes(), 20000);
}

TEST(DatagenTest, ApproxNodeScalingIsReasonable) {
  for (int64_t target : {5000, 20000}) {
    xml::Document doc = GenerateDblpWithApproxNodes(1, target);
    EXPECT_GT(doc.num_nodes(), target / 2) << target;
    EXPECT_LT(doc.num_nodes(), target * 2) << target;
  }
  xml::Document store = GenerateStoreWithApproxNodes(1, 10000);
  EXPECT_GT(store.num_nodes(), 5000);
  EXPECT_LT(store.num_nodes(), 20000);
  xml::Document xmark = GenerateXmarkWithApproxNodes(1, 10000);
  EXPECT_GT(xmark.num_nodes(), 5000);
  EXPECT_LT(xmark.num_nodes(), 20000);
}

}  // namespace
}  // namespace lotusx::datagen
