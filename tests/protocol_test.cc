// Regression pins for the protocol-parsing sweep that rode along with the
// TCP serving layer (see docs/PROTOCOL.md "Wire transport"):
//   * ParseDouble rejects non-finite and hex spellings — NaN coordinates
//     would scramble ChildrenLeftToRight's x-ordering;
//   * VALUE predicates are parsed from the raw line, preserving runs of
//     spaces that SplitSkipEmpty + re-join used to collapse;
//   * PARSE / EXAMPLE / LOADCANVAS checkpoint before replacing the canvas,
//     so a single command can no longer irrecoverably destroy the query;
//   * every verb returns an unterminated payload (the transport owns
//     newline/frame termination).

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/statement_store.h"
#include "session/canvas.h"
#include "session/protocol.h"
#include "session/session.h"
#include "tests/test_util.h"

namespace lotusx::session {
namespace {

using lotusx::testing::MustIndex;

constexpr std::string_view kXml = R"(<dblp>
  <article>
    <author>jiaheng lu</author>
    <title>twig joins</title>
    <year>2005</year>
  </article>
  <article>
    <author>chunbin lin</author>
    <title>lotusx search</title>
    <year>2012</year>
  </article>
</dblp>)";

class ProtocolRegressionTest : public ::testing::Test {
 protected:
  ProtocolRegressionTest()
      : indexed_(MustIndex(kXml)), session_(indexed_),
        interpreter_(&session_) {}

  std::string Must(std::string_view line) {
    auto result = interpreter_.Execute(line);
    EXPECT_TRUE(result.ok()) << line << " -> " << result.status().ToString();
    return result.ok() ? *result : "";
  }

  index::IndexedDocument indexed_;
  Session session_;
  ProtocolInterpreter interpreter_;
};

// ------------------------------------------------- non-finite coordinates

TEST_F(ProtocolRegressionTest, RejectsNonFiniteCoordinates) {
  for (const char* line :
       {"ADD nan nan", "ADD inf 0", "ADD 0 -inf", "ADD NAN 0",
        "ADD 1 Infinity", "MOVE 1 nan 0", "ACCEPT 1 inf 0"}) {
    auto result = interpreter_.Execute(line);
    EXPECT_FALSE(result.ok()) << line << " unexpectedly succeeded";
  }
  // Nothing reached the canvas.
  EXPECT_TRUE(session_.canvas().empty());
}

TEST_F(ProtocolRegressionTest, RejectsHexCoordinates) {
  EXPECT_FALSE(interpreter_.Execute("ADD 0x10 0").ok());
  EXPECT_FALSE(interpreter_.Execute("ADD 0 0X1p3").ok());
}

TEST_F(ProtocolRegressionTest, AcceptsOrdinaryDecimalForms) {
  EXPECT_EQ(Must("ADD -12.5 1e2 article"), "node 1");
  const CanvasNode* node = session_.canvas().FindNode(1);
  ASSERT_NE(node, nullptr);
  EXPECT_DOUBLE_EQ(node->x, -12.5);
  EXPECT_DOUBLE_EQ(node->y, 100.0);
}

// NaN coordinates used to poison the sibling ordering: with a NaN x every
// comparison is false and the left-to-right child order (the drawable form
// of order-sensitive queries) became arbitrary. Pin the front door shut.
TEST_F(ProtocolRegressionTest, ChildOrderStaysTotalBecauseNanNeverEnters) {
  Must("ADD 50 0 article");
  EXPECT_FALSE(interpreter_.Execute("ADD nan 100 author").ok());
  Must("ADD 10 100 author");
  Must("ADD 90 100 title");
  Must("EDGE 1 2 /");
  Must("EDGE 1 3 /");
  std::vector<CanvasNodeId> order = session_.canvas().ChildrenLeftToRight(1);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 2);  // author at x=10 before title at x=90
  EXPECT_EQ(order[1], 3);
}

// ------------------------------------------------ VALUE whitespace fidelity

TEST_F(ProtocolRegressionTest, ValuePreservesConsecutiveSpaces) {
  Must("ADD 0 0 title");
  EXPECT_EQ(Must("VALUE 1 = twig  joins"), "ok");
  const CanvasNode* node = session_.canvas().FindNode(1);
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->predicate.text, "twig  joins");
}

TEST_F(ProtocolRegressionTest, ValuePreservesLeadingAndTrailingSpaces) {
  Must("ADD 0 0 title");
  // One space after the operator is the separator; everything beyond is
  // the predicate, verbatim.
  EXPECT_EQ(Must("VALUE 1 ~  leading"), "ok");
  EXPECT_EQ(session_.canvas().FindNode(1)->predicate.text, " leading");
  EXPECT_EQ(Must("VALUE 1 ~ trailing  "), "ok");
  EXPECT_EQ(session_.canvas().FindNode(1)->predicate.text, "trailing  ");
}

TEST_F(ProtocolRegressionTest, ValueSingleSpacedTextUnchanged) {
  Must("ADD 0 0 author");
  EXPECT_EQ(Must("VALUE 1 = jiaheng lu"), "ok");
  EXPECT_EQ(session_.canvas().FindNode(1)->predicate.text, "jiaheng lu");
  EXPECT_EQ(Must("VALUE 1 NONE"), "ok");
  EXPECT_EQ(session_.canvas().FindNode(1)->predicate.op,
            twig::ValuePredicate::Op::kNone);
}

TEST_F(ProtocolRegressionTest, ValueStillRejectsMissingText) {
  Must("ADD 0 0 author");
  EXPECT_FALSE(interpreter_.Execute("VALUE 1 =").ok());
  EXPECT_FALSE(interpreter_.Execute("VALUE 1 = ").ok());
}

// ------------------------------------- checkpoint-before-replace semantics

TEST_F(ProtocolRegressionTest, ParseIsUndoable) {
  Must("ADD 0 0 article");
  Must("ADD 0 100 title");
  Must("EDGE 1 2 /");
  std::string before = Must("QUERY");
  Must("PARSE //book/author");
  EXPECT_EQ(Must("QUERY"), "//book/author!");
  EXPECT_EQ(Must("UNDO"), "ok");
  EXPECT_EQ(Must("QUERY"), before);
}

TEST_F(ProtocolRegressionTest, FailedParseLeavesHistoryAlone) {
  Must("ADD 0 0 article");
  size_t depth = session_.undo_depth();
  EXPECT_FALSE(interpreter_.Execute("PARSE ///[").ok());
  EXPECT_EQ(session_.undo_depth(), depth);
  EXPECT_EQ(session_.canvas().nodes().size(), 1u);
}

TEST_F(ProtocolRegressionTest, ExampleIsUndoable) {
  Must("ADD 0 0 article");
  std::string before = Must("SHOW");
  std::string loaded = Must("EXAMPLE 2");
  EXPECT_NE(loaded.find("canvas loaded"), std::string::npos) << loaded;
  EXPECT_EQ(Must("UNDO"), "ok");
  EXPECT_EQ(Must("SHOW"), before);
}

TEST_F(ProtocolRegressionTest, LoadCanvasIsUndoable) {
  Must("ADD 0 0 article");
  Must("ADD 0 100 title");
  Must("EDGE 1 2 /");
  std::string path = ::testing::TempDir() + "/protocol_undo_canvas.xml";
  Must("SAVECANVAS " + path);
  Must("RESET");
  Must("ADD 5 5 book");
  std::string before = Must("SHOW");
  EXPECT_EQ(Must("LOADCANVAS " + path), "ok");
  EXPECT_EQ(Must("QUERY"), "//article!/title");
  EXPECT_EQ(Must("UNDO"), "ok");
  EXPECT_EQ(Must("SHOW"), before);
  std::remove(path.c_str());
}

// ------------------------------------------------------- response framing

// Every verb's payload must come back unterminated: once responses are
// pipelined over TCP, a verb-dependent trailing "\n" (FIND/RUN/SHOW had
// one, most verbs did not) breaks deterministic framing.
TEST_F(ProtocolRegressionTest, NoVerbReturnsTrailingNewline) {
  std::string path = ::testing::TempDir() + "/protocol_framing_canvas.xml";
  const std::vector<std::string> script = {
      "HELP",
      "ADD 50 0 article",
      "TAG 1 article",
      "ADD 10 130 author",
      "EDGE 1 2 /",
      "TYPE 1 / t",
      "ACCEPT 1",
      "TYPEVAL 2",
      "VALUE 2 ~ lu",
      "ORDERED 1 ON",
      "ORDERED 1 OFF",  // XPATH below cannot express ordered queries
      "OUTPUT 3",
      "MOVE 2 20 130",
      "QUERY",
      "RUN",
      "FIND twig joins",
      "STATS",
      "STATS DOC",
      "EXPLAIN",
      "XPATH",
      "XQUERY",
      "SVG",
      "SVG " + path,
      "SAVECANVAS " + path,
      "LOADCANVAS " + path,
      "HISTORY",
      "EXAMPLE 2",
      "PARSE //article/title",
      "CHECKPOINT",
      "UNDO",
      "SHOW",
      "REMOVE 2",
      "RESET",
  };
  for (const std::string& line : script) {
    std::string response = Must(line);
    EXPECT_FALSE(!response.empty() && response.back() == '\n')
        << "'" << line << "' returned a newline-terminated payload";
  }
  std::remove(path.c_str());
}

// Multi-line payloads keep their interior newlines — only the trailing
// terminator is the transport's business.
TEST_F(ProtocolRegressionTest, MultiLinePayloadsKeepInteriorNewlines) {
  Must("ADD 0 0 article");
  Must("ADD 0 100 title");
  Must("EDGE 1 2 /");
  std::string show = Must("SHOW");
  EXPECT_NE(show.find('\n'), std::string::npos);
  EXPECT_NE(show.back(), '\n');
  std::string run = Must("RUN");
  EXPECT_NE(run.find('\n'), std::string::npos);
  EXPECT_NE(run.back(), '\n');
}

// ------------------------------------------------ STATEMENTS / PROFILE

TEST_F(ProtocolRegressionTest, StatementsVerbAggregatesCanvasRuns) {
  stmt::StatementStore::Default().Reset();
  Must("ADD 0 0 article");
  Must("ADD 0 100 author");
  Must("EDGE 1 2 /");
  Must("RUN");
  Must("RUN");

  const std::string top = Must("STATEMENTS TOP");
  EXPECT_NE(top.find("fingerprint=0x"), std::string::npos) << top;
  EXPECT_NE(top.find("calls=2"), std::string::npos)
      << "two RUNs of one canvas are one statement: " << top;

  // The fingerprint shown by TOP round-trips through BY-FINGERPRINT.
  const size_t at = top.find("fingerprint=");
  ASSERT_NE(at, std::string::npos);
  const std::string fingerprint = top.substr(at + 12, 18);
  const std::string row = Must("STATEMENTS BY-FINGERPRINT " + fingerprint);
  EXPECT_NE(row.find(fingerprint), std::string::npos) << row;

  EXPECT_EQ(Must("STATEMENTS RESET"), "ok");
  EXPECT_EQ(Must("STATEMENTS TOP"), "(empty)");
  auto gone = interpreter_.Execute("STATEMENTS BY-FINGERPRINT " + fingerprint);
  EXPECT_FALSE(gone.ok()) << "a reset store tracks nothing";
}

TEST_F(ProtocolRegressionTest, StatementsVerbValidatesArguments) {
  for (const char* line :
       {"STATEMENTS TOP 0", "STATEMENTS TOP -3", "STATEMENTS TOP 1 2",
        "STATEMENTS BY-FINGERPRINT", "STATEMENTS BY-FINGERPRINT zzz",
        "STATEMENTS RESET extra", "STATEMENTS wat"}) {
    EXPECT_FALSE(interpreter_.Execute(line).ok()) << line;
  }
}

TEST_F(ProtocolRegressionTest, ProfileVerbValidatesArguments) {
  for (const char* line : {"PROFILE", "PROFILE NOPE", "PROFILE CPU 0",
                           "PROFILE CPU -5", "PROFILE CPU 10 20"}) {
    EXPECT_FALSE(interpreter_.Execute(line).ok()) << line;
  }
  // A tiny live profile runs end to end; an idle process may render
  // the no-samples placeholder, but the verb itself succeeds.
  auto result = interpreter_.Execute("PROFILE CPU 20");
  EXPECT_TRUE(result.ok()) << result.status().ToString();
}

}  // namespace
}  // namespace lotusx::session
