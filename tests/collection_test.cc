#include <gtest/gtest.h>

#include "lotusx/collection.h"

namespace lotusx {
namespace {

constexpr std::string_view kBib = R"(<dblp>
  <article><author>lu</author><title>twig search</title></article>
  <article><author>lin</author><title>lotus search engine</title></article>
</dblp>)";

constexpr std::string_view kShop = R"(<store>
  <product><name>lotus tea</name><price>5.00</price></product>
  <product><name>search lamp</name><price>25.00</price></product>
</store>)";

Collection MakeCollection() {
  Collection collection;
  EXPECT_TRUE(collection.AddXmlText("bib", kBib).ok());
  EXPECT_TRUE(collection.AddXmlText("shop", kShop).ok());
  return collection;
}

TEST(CollectionTest, AddRemoveList) {
  Collection collection = MakeCollection();
  EXPECT_EQ(collection.size(), 2u);
  EXPECT_EQ(collection.DocumentNames(),
            (std::vector<std::string>{"bib", "shop"}));
  EXPECT_TRUE(collection.AddXmlText("bib", kBib).code() ==
              StatusCode::kAlreadyExists);
  EXPECT_TRUE(collection.Remove("shop").ok());
  EXPECT_TRUE(collection.Remove("shop").IsNotFound());
  EXPECT_EQ(collection.size(), 1u);
}

TEST(CollectionTest, AddRejectsBadInput) {
  Collection collection;
  EXPECT_FALSE(collection.AddXmlText("", kBib).ok());
  EXPECT_FALSE(collection.AddXmlText("x", "<broken>").ok());
  EXPECT_FALSE(collection.AddXmlFile("y", "/does/not/exist.xml").ok());
}

TEST(CollectionTest, FindReturnsEngine) {
  Collection collection = MakeCollection();
  auto engine = collection.Find("bib");
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ((*engine)->document().TagName(0), "dblp");
  EXPECT_TRUE(collection.Find("nope").status().IsNotFound());
}

TEST(CollectionTest, SearchMergesAcrossDocuments) {
  Collection collection = MakeCollection();
  // "lotus" occurs in one title (bib) and one product name (shop).
  auto result = collection.Search(R"(//*[~"lotus"])");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->hits.size(), 2u);
  std::set<std::string> docs;
  for (const CollectionHit& hit : result->hits) {
    docs.insert(hit.document_name);
  }
  EXPECT_EQ(docs, (std::set<std::string>{"bib", "shop"}));
}

TEST(CollectionTest, SearchHitsAreScoreOrdered) {
  Collection collection = MakeCollection();
  auto result = collection.Search(R"(//*[~"search"])");
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->hits.size(), 2u);
  for (size_t i = 1; i < result->hits.size(); ++i) {
    EXPECT_GE(result->hits[i - 1].result.score, result->hits[i].result.score);
  }
}

TEST(CollectionTest, DocumentSpecificQueryDoesNotPolluteOthers) {
  Collection collection = MakeCollection();
  // //article exists only in bib; shop must contribute nothing (no
  // rewriting noise on the first pass).
  auto result = collection.Search("//article/title");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->hits.size(), 2u);
  for (const CollectionHit& hit : result->hits) {
    EXPECT_EQ(hit.document_name, "bib");
  }
  EXPECT_TRUE(result->rewrites.empty());
}

TEST(CollectionTest, RewritingIsCollectionLevelFallback) {
  Collection collection = MakeCollection();
  // Misspelled everywhere: no document answers directly, so pass 2
  // rewrites per document.
  auto result = collection.Search("//articel/title");
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->hits.empty());
  EXPECT_FALSE(result->rewrites.empty());
  // bib recovered via respelling.
  EXPECT_TRUE(result->rewrites.contains("bib"));
}

TEST(CollectionTest, TopKBoundsHits) {
  Collection collection = MakeCollection();
  auto result = collection.Search("//*", /*top_k=*/3);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->hits.size(), 3u);
}

TEST(CollectionTest, CompleteTagMergesFrequencies) {
  Collection collection = MakeCollection();
  autocomplete::TagRequest request;
  request.axis = twig::Axis::kDescendant;
  request.limit = 10;
  auto candidates = collection.CompleteTag(twig::TwigQuery(), request);
  ASSERT_TRUE(candidates.ok());
  // article (2, bib) and product (2, shop) both present.
  std::map<std::string, uint64_t> by_name;
  for (const auto& candidate : *candidates) {
    by_name[candidate.text] = candidate.frequency;
  }
  EXPECT_EQ(by_name.at("article"), 2u);
  EXPECT_EQ(by_name.at("product"), 2u);
  EXPECT_EQ(by_name.at("title"), 2u);
  EXPECT_EQ(by_name.at("name"), 2u);
}

TEST(CollectionTest, EmptyCollectionSearch) {
  Collection collection;
  auto result = collection.Search("//a");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->hits.empty());
}

}  // namespace
}  // namespace lotusx
