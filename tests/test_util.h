#ifndef LOTUSX_TESTS_TEST_UTIL_H_
#define LOTUSX_TESTS_TEST_UTIL_H_

#include <string_view>
#include <vector>

#include "index/indexed_document.h"
#include "twig/match.h"
#include "twig/twig_query.h"
#include "xml/dom.h"
#include "xml/dom_builder.h"

namespace lotusx::testing {

/// Parses `xml` or dies; convenience for test fixtures.
xml::Document MustParse(std::string_view xml);

/// Builds a fully indexed document from XML text or dies.
index::IndexedDocument MustIndex(std::string_view xml);

/// Reference twig matcher: recursive brute force over the DOM with no
/// index, no labels and no cleverness — the correctness oracle every real
/// algorithm is compared against. Returns matches sorted.
std::vector<twig::Match> BruteForceMatches(
    const index::IndexedDocument& indexed, const twig::TwigQuery& query,
    bool apply_order = true);

}  // namespace lotusx::testing

#endif  // LOTUSX_TESTS_TEST_UTIL_H_
