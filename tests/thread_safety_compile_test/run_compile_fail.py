#!/usr/bin/env python3
"""Compile-fail harness for the LotusX thread-safety annotations.

Pins the annotations in `src/common/sync.h` themselves: every
`snippets/bad_*.cc` holds one representative lock-discipline mistake
(touching a guarded field without the lock, double-acquire, returning
with a mutex held, calling a LOTUSX_EXCLUDES function under the lock)
and MUST be rejected by `clang++ -Wthread-safety -Wthread-safety-beta
-Werror`, with the diagnostic named by its `// EXPECT-ERROR:` line.
Every `snippets/good_*.cc` exercises the full macro set correctly and
MUST compile cleanly. If an annotation in sync.h regresses to a no-op
(or starts false-positive'ing), this harness is what turns red.

Only clang implements the analysis, so CMake registers the test only in
clang builds (the `thread-safety` preset / CI job). Standalone:

    python3 run_compile_fail.py --compiler clang++ \
        --src ../../src [--snippets snippets]
"""

import argparse
import os
import re
import subprocess
import sys

EXPECT_RE = re.compile(r"//\s*EXPECT-ERROR:\s*(.+?)\s*$")

FLAGS = [
    "-std=c++20",
    "-fsyntax-only",
    "-Wthread-safety",
    "-Wthread-safety-beta",
    "-Werror",
]


def expected_errors(path):
    with open(path, encoding="utf-8") as f:
        return [m.group(1) for line in f if (m := EXPECT_RE.search(line))]


def compile_snippet(compiler, src_dir, path):
    command = [compiler] + FLAGS + ["-I", src_dir, path]
    result = subprocess.run(command, capture_output=True, text=True)
    return result.returncode, result.stderr


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--compiler", required=True,
                        help="clang++ (or a clang-based wrapper)")
    parser.add_argument("--src", required=True,
                        help="repo src/ directory (for -I)")
    parser.add_argument("--snippets",
                        default=os.path.join(os.path.dirname(
                            os.path.abspath(__file__)), "snippets"),
                        help="directory of bad_*.cc / good_*.cc files")
    args = parser.parse_args()

    snippets = sorted(name for name in os.listdir(args.snippets)
                      if name.endswith(".cc"))
    if not snippets:
        print("no snippets found in", args.snippets, file=sys.stderr)
        return 2

    failures = []
    for name in snippets:
        path = os.path.join(args.snippets, name)
        returncode, stderr = compile_snippet(args.compiler, args.src, path)
        if name.startswith("good_"):
            if returncode != 0:
                failures.append(
                    f"{name}: expected clean compile, got:\n{stderr}")
            else:
                print(f"PASS {name} (compiles cleanly)")
            continue
        if not name.startswith("bad_"):
            failures.append(f"{name}: snippet must be named bad_* or good_*")
            continue
        expects = expected_errors(path)
        if not expects:
            failures.append(f"{name}: missing // EXPECT-ERROR: line")
            continue
        if returncode == 0:
            failures.append(
                f"{name}: compiled cleanly but must be rejected by "
                "-Wthread-safety -Werror")
            continue
        missing = [e for e in expects if e not in stderr]
        if missing:
            failures.append(
                f"{name}: rejected, but diagnostics lack {missing!r}; "
                f"stderr was:\n{stderr}")
        else:
            print(f"PASS {name} (rejected with expected diagnostic)")

    if failures:
        print(f"\n{len(failures)} compile-fail check(s) FAILED:",
              file=sys.stderr)
        for failure in failures:
            print("  " + failure.replace("\n", "\n  "), file=sys.stderr)
        return 1
    print(f"all {len(snippets)} snippets behaved as expected")
    return 0


if __name__ == "__main__":
    sys.exit(main())
