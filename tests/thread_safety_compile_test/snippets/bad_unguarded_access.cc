// Misuse: writing a LOTUSX_GUARDED_BY field without holding its mutex.
// EXPECT-ERROR: requires holding mutex
#include "common/sync.h"

class Account {
 public:
  void Deposit(int amount) {
    balance_ += amount;  // no MutexLock: must be rejected
  }

 private:
  lotusx::Mutex mu_;
  int balance_ LOTUSX_GUARDED_BY(mu_) = 0;
};

int main() {
  Account account;
  account.Deposit(1);
  return 0;
}
