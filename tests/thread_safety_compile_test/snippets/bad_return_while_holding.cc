// Misuse: returning with a manually acquired mutex still held (the
// scoped MutexLock makes this impossible; naked Lock() does not).
// EXPECT-ERROR: still held at the end of function
#include "common/sync.h"

lotusx::Mutex mu;
int counter LOTUSX_GUARDED_BY(mu) = 0;

int Bump() {
  mu.Lock();
  return ++counter;  // leaks the lock on return: must be rejected
}

int main() { return Bump(); }
