// Misuse: calling a LOTUSX_EXCLUDES(mu_) method while already holding
// mu_ — the re-acquire inside would self-deadlock (this is the
// anti-deadlock contract on const accessors like Registry::Snapshot).
// EXPECT-ERROR: while mutex 'mu_' is held
#include "common/sync.h"

class Registry {
 public:
  void Rebuild() LOTUSX_EXCLUDES(mu_) {
    lotusx::MutexLock lock(mu_);
    size_ = 0;
  }
  void Tick() {
    lotusx::MutexLock lock(mu_);
    ++size_;
    Rebuild();  // EXCLUDES violated under lock: must be rejected
  }

 private:
  lotusx::Mutex mu_;
  int size_ LOTUSX_GUARDED_BY(mu_) = 0;
};

int main() {
  Registry registry;
  registry.Tick();
  return 0;
}
