// Correct use of the whole sync vocabulary: MutexLock scopes, an
// explicit CondVar wait loop, a *Locked() helper with LOTUSX_REQUIRES,
// LOTUSX_EXCLUDES contracts, TryLock, and reader/writer locks over a
// SharedMutex. Must compile cleanly under -Wthread-safety
// -Wthread-safety-beta -Werror — a false positive here means the
// annotations in common/sync.h broke.
#include "common/sync.h"

namespace {

class BoundedCounter {
 public:
  void Increment() LOTUSX_EXCLUDES(mu_) {
    {
      lotusx::MutexLock lock(mu_);
      IncrementLocked();
    }
    not_zero_.Signal();
  }

  int BlockingDecrement() LOTUSX_EXCLUDES(mu_) {
    lotusx::MutexLock lock(mu_);
    while (count_ == 0) not_zero_.Wait(mu_);
    return --count_;
  }

  bool TryIncrement() LOTUSX_EXCLUDES(mu_) {
    if (!mu_.TryLock()) return false;
    IncrementLocked();
    mu_.Unlock();
    return true;
  }

 private:
  void IncrementLocked() LOTUSX_REQUIRES(mu_) { ++count_; }

  lotusx::Mutex mu_;
  lotusx::CondVar not_zero_;
  int count_ LOTUSX_GUARDED_BY(mu_) = 0;
};

class Config {
 public:
  int value() const LOTUSX_EXCLUDES(mu_) {
    lotusx::ReaderMutexLock lock(mu_);
    return value_;
  }
  void set_value(int value) LOTUSX_EXCLUDES(mu_) {
    lotusx::WriterMutexLock lock(mu_);
    value_ = value;
  }

 private:
  mutable lotusx::SharedMutex mu_;
  int value_ LOTUSX_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  BoundedCounter counter;
  counter.Increment();
  counter.TryIncrement();
  int drained = counter.BlockingDecrement();
  Config config;
  config.set_value(drained);
  return config.value();
}
