// Misuse: acquiring a mutex twice (self-deadlock on a non-recursive
// lock).
// EXPECT-ERROR: already held
#include "common/sync.h"

lotusx::Mutex mu;
int value LOTUSX_GUARDED_BY(mu) = 0;

int main() {
  mu.Lock();
  mu.Lock();  // double acquire: must be rejected
  value = 1;
  mu.Unlock();
  mu.Unlock();
  return 0;
}
