#include <gtest/gtest.h>

#include "twig/query_export.h"
#include "twig/query_parser.h"

namespace lotusx::twig {
namespace {

TwigQuery Q(std::string_view text) {
  auto result = ParseQuery(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

// ------------------------------------------------------------------ XPath

TEST(ToXPathTest, SimplePath) {
  EXPECT_EQ(*ToXPath(Q("//book/title")), "//book/title");
  EXPECT_EQ(*ToXPath(Q("/dblp//author")), "/dblp//author");
}

TEST(ToXPathTest, BranchesBecomePredicates) {
  EXPECT_EQ(*ToXPath(Q("//article[author]/title")),
            "//article[author]/title");
  EXPECT_EQ(*ToXPath(Q("//article[//year]/title")),
            "//article[.//year]/title");
  EXPECT_EQ(*ToXPath(Q("//a[b/c]/d")), "//a[b[c]]/d");
}

TEST(ToXPathTest, OutputSelectsTheSpine) {
  // Output on the branch: the branch becomes the spine, the old spine a
  // predicate.
  EXPECT_EQ(*ToXPath(Q("//article[author!]/title")),
            "//article[title]/author");
}

TEST(ToXPathTest, ValuePredicates) {
  EXPECT_EQ(*ToXPath(Q(R"(//year[="2012"])")),
            "//year[normalize-space(.) = \"2012\"]");
  EXPECT_EQ(*ToXPath(Q(R"(//title[~"xml twig"])")),
            "//title[contains(., \"xml\")][contains(., \"twig\")]");
}

TEST(ToXPathTest, AttributesAndWildcards) {
  EXPECT_EQ(*ToXPath(Q("//*/@key")), "//*/@key");
  EXPECT_EQ(*ToXPath(Q(R"(//book[@id[="b1"]]/title)")),
            "//book[@id[normalize-space(.) = \"b1\"]]/title");
}

TEST(ToXPathTest, OrderedQueriesRejected) {
  auto result = ToXPath(Q("//a[ordered][b][c]"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
}

TEST(ToXPathTest, QuoteInLiteralRejected) {
  TwigQuery query = Q("//a");
  query.SetPredicate(0, {ValuePredicate::Op::kEquals, "say \"hi\""});
  EXPECT_FALSE(ToXPath(query).ok());
}

// ----------------------------------------------------------------- XQuery

TEST(ToXQueryTest, FlworShape) {
  std::string xq = *ToXQuery(Q("//article[author]/title"));
  EXPECT_NE(xq.find("for $n0 in //article"), std::string::npos) << xq;
  EXPECT_NE(xq.find("$n1 in $n0/author"), std::string::npos);
  EXPECT_NE(xq.find("$n2 in $n0/title"), std::string::npos);
  EXPECT_NE(xq.find("return $n2"), std::string::npos);
}

TEST(ToXQueryTest, ValueConditions) {
  std::string xq = *ToXQuery(Q(R"(//article[year[="2012"]]/title[~"xml"])"));
  EXPECT_NE(xq.find("normalize-space($n1) = \"2012\""), std::string::npos)
      << xq;
  EXPECT_NE(xq.find("contains(lower-case(string($n2)), \"xml\")"),
            std::string::npos);
}

TEST(ToXQueryTest, OrderConstraintsUseNodeOrder) {
  std::string xq = *ToXQuery(Q("//product[ordered][name][price]"));
  EXPECT_NE(xq.find("$n1 << $n2"), std::string::npos) << xq;
  EXPECT_NE(xq.find("intersect"), std::string::npos);
}

TEST(ToXQueryTest, DescendantAxis) {
  std::string xq = *ToXQuery(Q("//book//title"));
  EXPECT_NE(xq.find("$n1 in $n0//title"), std::string::npos) << xq;
}

TEST(ToXQueryTest, RootAnchoring) {
  std::string xq = *ToXQuery(Q("/dblp/article"));
  EXPECT_NE(xq.find("for $n0 in /dblp"), std::string::npos) << xq;
}

}  // namespace
}  // namespace lotusx::twig
