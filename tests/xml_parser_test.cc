#include <gtest/gtest.h>

#include "xml/escape.h"
#include "xml/pull_parser.h"

namespace lotusx::xml {
namespace {

/// Drains the parser into a flat event list, failing the test on error.
std::vector<Event> MustParseEvents(std::string_view xml) {
  PullParser parser(xml);
  std::vector<Event> events;
  Event event;
  while (true) {
    Status status = parser.Next(&event);
    EXPECT_TRUE(status.ok()) << status.ToString();
    if (!status.ok() || event.kind == EventKind::kEndDocument) break;
    events.push_back(event);
  }
  return events;
}

/// Runs the parser to completion and returns the first error (OK if none).
Status ParseError(std::string_view xml) {
  PullParser parser(xml);
  Event event;
  while (true) {
    Status status = parser.Next(&event);
    if (!status.ok()) return status;
    if (event.kind == EventKind::kEndDocument) return Status::OK();
  }
}

TEST(PullParserTest, MinimalDocument) {
  std::vector<Event> events = MustParseEvents("<a/>");
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, EventKind::kStartElement);
  EXPECT_EQ(events[0].name, "a");
  EXPECT_EQ(events[1].kind, EventKind::kEndElement);
  EXPECT_EQ(events[1].name, "a");
}

TEST(PullParserTest, NestedElementsAndText) {
  std::vector<Event> events =
      MustParseEvents("<a><b>hello</b><c>world</c></a>");
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(events[0].name, "a");
  EXPECT_EQ(events[1].name, "b");
  EXPECT_EQ(events[2].kind, EventKind::kText);
  EXPECT_EQ(events[2].text, "hello");
  EXPECT_EQ(events[5].kind, EventKind::kText);
  EXPECT_EQ(events[5].text, "world");
}

TEST(PullParserTest, Attributes) {
  std::vector<Event> events =
      MustParseEvents(R"(<a x="1" y='two' z="a&amp;b"/>)");
  ASSERT_EQ(events[0].attributes.size(), 3u);
  EXPECT_EQ(events[0].attributes[0].name, "x");
  EXPECT_EQ(events[0].attributes[0].value, "1");
  EXPECT_EQ(events[0].attributes[1].value, "two");
  EXPECT_EQ(events[0].attributes[2].value, "a&b");
}

TEST(PullParserTest, EntitiesInText) {
  std::vector<Event> events =
      MustParseEvents("<a>&lt;tag&gt; &amp; &quot;x&quot; &apos;y&apos;"
                      " &#65;&#x42;</a>");
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[1].text, "<tag> & \"x\" 'y' AB");
}

TEST(PullParserTest, NumericEntityUtf8) {
  std::vector<Event> events = MustParseEvents("<a>&#x4E2D;&#233;</a>");
  EXPECT_EQ(events[1].text, "\xE4\xB8\xAD\xC3\xA9");  // 中é
}

TEST(PullParserTest, CDataIsText) {
  std::vector<Event> events =
      MustParseEvents("<a><![CDATA[<not> & parsed]]></a>");
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[1].kind, EventKind::kText);
  EXPECT_EQ(events[1].text, "<not> & parsed");
}

TEST(PullParserTest, CommentsAndPis) {
  std::vector<Event> events = MustParseEvents(
      "<?xml version=\"1.0\"?><!-- prolog --><a><!-- inner "
      "--><?target data?></a><!-- epilog -->");
  // Prolog/epilog comments are consumed during prolog/epilog handling or
  // reported; inner ones must be reported in order.
  bool saw_comment = false;
  bool saw_pi = false;
  for (const Event& event : events) {
    if (event.kind == EventKind::kComment && event.text == " inner ") {
      saw_comment = true;
    }
    if (event.kind == EventKind::kProcessingInstruction) {
      EXPECT_EQ(event.name, "target");
      EXPECT_EQ(event.text, "data");
      saw_pi = true;
    }
  }
  EXPECT_TRUE(saw_comment);
  EXPECT_TRUE(saw_pi);
}

TEST(PullParserTest, DoctypeWithInternalSubsetIsSkipped) {
  std::vector<Event> events = MustParseEvents(
      "<!DOCTYPE dblp [ <!ELEMENT dblp (x)*> <!ENTITY e \"v>\"> ]><dblp/>");
  ASSERT_GE(events.size(), 1u);
  EXPECT_EQ(events[0].name, "dblp");
}

TEST(PullParserTest, Utf8BomIsSkipped) {
  std::vector<Event> events = MustParseEvents("\xEF\xBB\xBF<a/>");
  EXPECT_EQ(events[0].name, "a");
}

TEST(PullParserTest, WhitespaceAroundRootAllowed) {
  EXPECT_TRUE(ParseError("  \n<a/>\n  ").ok());
}

TEST(PullParserTest, SelfClosingWithAttributes) {
  std::vector<Event> events = MustParseEvents("<a><b k=\"v\"/></a>");
  EXPECT_EQ(events[1].name, "b");
  EXPECT_EQ(events[2].kind, EventKind::kEndElement);
  EXPECT_EQ(events[2].name, "b");
}

// ---------------------------------------------------------------- Errors

TEST(PullParserTest, MismatchedTagsRejected) {
  EXPECT_TRUE(ParseError("<a><b></a></b>").IsCorruption());
}

TEST(PullParserTest, UnclosedRootRejected) {
  EXPECT_TRUE(ParseError("<a><b></b>").IsCorruption());
}

TEST(PullParserTest, MultipleRootsRejected) {
  EXPECT_TRUE(ParseError("<a/><b/>").IsCorruption());
}

TEST(PullParserTest, TextOutsideRootRejected) {
  EXPECT_TRUE(ParseError("<a/>stray").IsCorruption());
  EXPECT_TRUE(ParseError("stray<a/>").IsCorruption());
}

TEST(PullParserTest, DuplicateAttributeRejected) {
  EXPECT_TRUE(ParseError("<a x=\"1\" x=\"2\"/>").IsCorruption());
}

TEST(PullParserTest, UnquotedAttributeRejected) {
  EXPECT_TRUE(ParseError("<a x=1/>").IsCorruption());
}

TEST(PullParserTest, BadEntityRejected) {
  EXPECT_TRUE(ParseError("<a>&bogus;</a>").IsCorruption());
  EXPECT_TRUE(ParseError("<a>& bare</a>").IsCorruption());
  EXPECT_TRUE(ParseError("<a>&#xZZ;</a>").IsCorruption());
  EXPECT_TRUE(ParseError("<a>&#x110000;</a>").IsCorruption());  // > U+10FFFF
}

TEST(PullParserTest, EmptyInputRejected) {
  EXPECT_TRUE(ParseError("").IsCorruption());
  EXPECT_TRUE(ParseError("   ").IsCorruption());
}

TEST(PullParserTest, DoubleDashInCommentRejected) {
  EXPECT_TRUE(ParseError("<a><!-- x -- y --></a>").IsCorruption());
}

TEST(PullParserTest, ReservedPiTargetRejected) {
  EXPECT_TRUE(ParseError("<a><?xml bad?></a>").IsCorruption());
}

TEST(PullParserTest, LtInAttributeValueRejected) {
  EXPECT_TRUE(ParseError("<a x=\"<\"/>").IsCorruption());
}

TEST(PullParserTest, UnmatchedEndTagRejected) {
  EXPECT_TRUE(ParseError("<a></a></b>").IsCorruption());
}

TEST(PullParserTest, ErrorIsSticky) {
  PullParser parser("<a><b></a>");
  Event event;
  Status first;
  while (true) {
    first = parser.Next(&event);
    if (!first.ok()) break;
    ASSERT_NE(event.kind, EventKind::kEndDocument);
  }
  Status second = parser.Next(&event);
  EXPECT_EQ(first, second);
}

TEST(PullParserTest, ErrorsReportPosition) {
  Status status = ParseError("<a>\n  <b></c>\n</a>");
  ASSERT_TRUE(status.IsCorruption());
  EXPECT_NE(status.message().find("2:"), std::string::npos)
      << status.message();
}

TEST(PullParserTest, TruncatedEntityRejected) {
  EXPECT_TRUE(ParseError("<a>&amp</a>").IsCorruption());
  EXPECT_TRUE(ParseError("<a>&amp").IsCorruption());   // entity cut by EOF
  EXPECT_TRUE(ParseError("<a>&#12").IsCorruption());   // numeric, no ';'
  EXPECT_TRUE(ParseError("<a>&#x1F").IsCorruption());  // hex, no ';'
  EXPECT_TRUE(ParseError("<a>&").IsCorruption());
  EXPECT_TRUE(ParseError("<a x=\"&quot\"/>").IsCorruption());  // in attribute
}

TEST(PullParserTest, CDataAtEofRejected) {
  EXPECT_TRUE(ParseError("<a><![CDATA[unterminated").IsCorruption());
  EXPECT_TRUE(ParseError("<a><![CDATA[x]]").IsCorruption());  // missing '>'
  EXPECT_TRUE(ParseError("<a><![CDATA[").IsCorruption());
}

TEST(PullParserTest, TruncatedMarkupAtEofRejected) {
  EXPECT_TRUE(ParseError("<").IsCorruption());
  EXPECT_TRUE(ParseError("<a><b").IsCorruption());
  EXPECT_TRUE(ParseError("<a></").IsCorruption());
  EXPECT_TRUE(ParseError("<a><!--").IsCorruption());
}

TEST(PullParserTest, MismatchedCloseTagVariantsRejected) {
  EXPECT_TRUE(ParseError("<a><b><c></b></c></a>").IsCorruption());
  EXPECT_TRUE(ParseError("<a><a></a></b>").IsCorruption());
  EXPECT_TRUE(ParseError("</a>").IsCorruption());  // close with nothing open
}

TEST(PullParserTest, DeepNestingBeyondLimitRejected) {
  std::string xml;
  for (int i = 0; i < 5000; ++i) xml += "<a>";
  for (int i = 0; i < 5000; ++i) xml += "</a>";
  EXPECT_TRUE(ParseError(xml).IsCorruption());
}

// ---------------------------------------------------------------- Escape

TEST(EscapeTest, TextEscaping) {
  EXPECT_EQ(EscapeText("a<b>&c"), "a&lt;b&gt;&amp;c");
  EXPECT_EQ(EscapeText("plain"), "plain");
  EXPECT_EQ(EscapeText("\"quotes'ok\""), "\"quotes'ok\"");
}

TEST(EscapeTest, AttributeEscaping) {
  EXPECT_EQ(EscapeAttribute("a\"b<c"), "a&quot;b&lt;c");
}

TEST(EscapeTest, UnescapeRoundTrip) {
  std::string original = "a<b>&c\"d'e";
  std::string unescaped;
  ASSERT_TRUE(UnescapeEntities(EscapeText(original), &unescaped).ok());
  EXPECT_EQ(unescaped, original);
}

TEST(EscapeTest, AppendUtf8Boundaries) {
  std::string out;
  EXPECT_TRUE(AppendUtf8(0x7F, &out));
  EXPECT_TRUE(AppendUtf8(0x80, &out));
  EXPECT_TRUE(AppendUtf8(0x7FF, &out));
  EXPECT_TRUE(AppendUtf8(0x800, &out));
  EXPECT_TRUE(AppendUtf8(0xFFFF, &out));
  EXPECT_TRUE(AppendUtf8(0x10000, &out));
  EXPECT_TRUE(AppendUtf8(0x10FFFF, &out));
  EXPECT_FALSE(AppendUtf8(0x110000, &out));
  EXPECT_FALSE(AppendUtf8(0xD800, &out));  // surrogate
  EXPECT_EQ(out.size(), 1u + 2 + 2 + 3 + 3 + 4 + 4);
}

}  // namespace
}  // namespace lotusx::xml
