#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "index/trie.h"

namespace lotusx::index {
namespace {

TEST(TrieTest, EmptyTrie) {
  Trie trie;
  EXPECT_EQ(trie.num_keys(), 0u);
  EXPECT_FALSE(trie.Contains("x"));
  EXPECT_EQ(trie.WeightOf("x"), 0u);
  EXPECT_TRUE(trie.Complete("", 10).empty());
}

TEST(TrieTest, InsertAndLookup) {
  Trie trie;
  trie.Insert("author", 5);
  trie.Insert("article", 3);
  trie.Insert("author", 2);  // accumulates
  EXPECT_EQ(trie.num_keys(), 2u);
  EXPECT_TRUE(trie.Contains("author"));
  EXPECT_EQ(trie.WeightOf("author"), 7u);
  EXPECT_EQ(trie.WeightOf("article"), 3u);
  EXPECT_FALSE(trie.Contains("aut"));  // prefix, not a key
}

TEST(TrieTest, EmptyKeyIsValid) {
  Trie trie;
  trie.Insert("", 4);
  EXPECT_TRUE(trie.Contains(""));
  EXPECT_EQ(trie.WeightOf(""), 4u);
}

TEST(TrieTest, CompleteReturnsHeaviestFirst) {
  Trie trie;
  trie.Insert("title", 100);
  trie.Insert("time", 50);
  trie.Insert("tiny", 75);
  trie.Insert("total", 200);
  std::vector<Completion> completions = trie.Complete("ti", 10);
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0].key, "title");
  EXPECT_EQ(completions[0].weight, 100u);
  EXPECT_EQ(completions[1].key, "tiny");
  EXPECT_EQ(completions[2].key, "time");
}

TEST(TrieTest, CompleteRespectsLimit) {
  Trie trie;
  for (int i = 0; i < 20; ++i) {
    trie.Insert("key" + std::to_string(i), static_cast<uint64_t>(i + 1));
  }
  EXPECT_EQ(trie.Complete("key", 5).size(), 5u);
  EXPECT_EQ(trie.Complete("key", 0).size(), 0u);
  EXPECT_EQ(trie.Complete("key", 100).size(), 20u);
}

TEST(TrieTest, CompleteIncludesPrefixItself) {
  Trie trie;
  trie.Insert("auth", 1);
  trie.Insert("author", 9);
  std::vector<Completion> completions = trie.Complete("auth", 10);
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_EQ(completions[0].key, "author");
  EXPECT_EQ(completions[1].key, "auth");
}

TEST(TrieTest, TiesBrokenLexicographically) {
  Trie trie;
  trie.Insert("beta", 5);
  trie.Insert("alpha", 5);
  trie.Insert("gamma", 5);
  std::vector<Completion> completions = trie.Complete("", 3);
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0].key, "alpha");
  EXPECT_EQ(completions[1].key, "beta");
  EXPECT_EQ(completions[2].key, "gamma");
}

TEST(TrieTest, UnknownPrefixYieldsNothing) {
  Trie trie;
  trie.Insert("abc", 1);
  EXPECT_TRUE(trie.Complete("abd", 5).empty());
  EXPECT_TRUE(trie.Complete("abcd", 5).empty());
}

TEST(TrieTest, EnumerateIsLexicographic) {
  Trie trie;
  trie.Insert("b", 1);
  trie.Insert("ab", 2);
  trie.Insert("a", 3);
  trie.Insert("abc", 4);
  std::vector<Completion> all = trie.Enumerate("");
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].key, "a");
  EXPECT_EQ(all[1].key, "ab");
  EXPECT_EQ(all[2].key, "abc");
  EXPECT_EQ(all[3].key, "b");
}

TEST(TrieTest, CompleteAgreesWithEnumerateOnRandomData) {
  Random random(99);
  Trie trie;
  std::map<std::string, uint64_t> reference;
  for (int i = 0; i < 500; ++i) {
    std::string key = random.NextWord(1, 6);
    uint64_t weight = random.NextBounded(1000) + 1;
    trie.Insert(key, weight);
    reference[key] += weight;
  }
  EXPECT_EQ(trie.num_keys(), reference.size());
  for (std::string_view prefix : {"", "a", "ab", "z", "qx"}) {
    std::vector<Completion> enumerated = trie.Enumerate(prefix);
    // Reference: filter + sort by (-weight, key).
    std::vector<Completion> expected;
    for (const auto& [key, weight] : reference) {
      if (key.starts_with(prefix)) expected.push_back({key, weight});
    }
    EXPECT_EQ(enumerated.size(), expected.size());
    std::sort(expected.begin(), expected.end(),
              [](const Completion& a, const Completion& b) {
                if (a.weight != b.weight) return a.weight > b.weight;
                return a.key < b.key;
              });
    std::vector<Completion> completed = trie.Complete(prefix, 25);
    ASSERT_LE(completed.size(), 25u);
    for (size_t i = 0; i < completed.size(); ++i) {
      EXPECT_EQ(completed[i], expected[i]) << "prefix=" << prefix << " i=" << i;
    }
  }
}

TEST(TrieTest, PersistenceRoundTrip) {
  Trie trie;
  trie.Insert("author", 10);
  trie.Insert("article", 7);
  trie.Insert("title", 3);
  trie.Insert("", 1);
  std::string buffer;
  Encoder encoder(&buffer);
  trie.EncodeTo(&encoder);
  Decoder decoder(buffer);
  auto decoded = Trie::DecodeFrom(&decoder);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->num_keys(), trie.num_keys());
  EXPECT_EQ(decoded->WeightOf("author"), 10u);
  EXPECT_EQ(decoded->Complete("a", 10), trie.Complete("a", 10));
  EXPECT_TRUE(decoder.Done());
}

TEST(TrieTest, DecodeRejectsCorruptImages) {
  Trie trie;
  trie.Insert("ok", 1);
  std::string buffer;
  Encoder encoder(&buffer);
  trie.EncodeTo(&encoder);
  {
    Decoder decoder(std::string_view(buffer).substr(0, buffer.size() / 2));
    EXPECT_FALSE(Trie::DecodeFrom(&decoder).ok());
  }
  {
    std::string empty;
    Encoder e2(&empty);
    e2.PutVarint64(0);  // zero nodes: no root
    e2.PutVarint64(0);
    Decoder decoder(empty);
    EXPECT_FALSE(Trie::DecodeFrom(&decoder).ok());
  }
}

TEST(TrieTest, ZeroWeightInsertIsNotAKey) {
  // Regression: re-inserting a weight-0 key used to bump num_keys_ every
  // time (the terminal stayed at weight 0), so num_keys drifted from the
  // actual terminal count and ValidateInvariants reported corruption.
  Trie trie;
  trie.Insert("draft", 0);
  trie.Insert("draft", 0);
  EXPECT_EQ(trie.num_keys(), 0u);
  EXPECT_FALSE(trie.Contains("draft"));
  EXPECT_TRUE(trie.Complete("d", 10).empty());
  ASSERT_TRUE(trie.ValidateInvariants().ok())
      << trie.ValidateInvariants().ToString();

  // The 0 -> positive transition counts exactly once...
  trie.Insert("draft", 4);
  EXPECT_EQ(trie.num_keys(), 1u);
  EXPECT_TRUE(trie.Contains("draft"));
  // ... and later zero-weight re-inserts change nothing, including the
  // subtree maxima along the path.
  trie.Insert("draft", 0);
  EXPECT_EQ(trie.num_keys(), 1u);
  EXPECT_EQ(trie.WeightOf("draft"), 4u);
  auto completions = trie.Complete("d", 10);
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].weight, 4u);
  ASSERT_TRUE(trie.ValidateInvariants().ok())
      << trie.ValidateInvariants().ToString();
}

TEST(TrieTest, ZeroWeightInsertOnFreshPathKeepsInvariants) {
  Trie trie;
  trie.Insert("alpha", 7);
  trie.Insert("alphabet", 0);  // extends an existing path, adds no key
  EXPECT_EQ(trie.num_keys(), 1u);
  EXPECT_FALSE(trie.Contains("alphabet"));
  ASSERT_TRUE(trie.ValidateInvariants().ok())
      << trie.ValidateInvariants().ToString();
}

TEST(TrieTest, MemoryUsageGrowsWithContent) {
  Trie small;
  small.Insert("a", 1);
  Trie large;
  for (int i = 0; i < 100; ++i) {
    large.Insert("key" + std::to_string(i), 1);
  }
  EXPECT_GT(large.MemoryUsage(), small.MemoryUsage());
}

}  // namespace
}  // namespace lotusx::index
