#include <gtest/gtest.h>

#include "session/svg_export.h"
#include "xml/dom_builder.h"

namespace lotusx::session {
namespace {

Canvas MakeCanvas() {
  Canvas canvas;
  CanvasNodeId article = canvas.AddNode(50, 0, "article");
  CanvasNodeId author = canvas.AddNode(0, 120, "author");
  CanvasNodeId title = canvas.AddNode(120, 120, "title");
  EXPECT_TRUE(canvas.Connect(article, author, twig::Axis::kChild).ok());
  EXPECT_TRUE(canvas.Connect(article, title, twig::Axis::kDescendant).ok());
  EXPECT_TRUE(canvas.SetOutput(title).ok());
  EXPECT_TRUE(canvas.SetOrdered(article, true).ok());
  EXPECT_TRUE(canvas
                  .SetPredicate(author,
                                {twig::ValuePredicate::Op::kContains, "lu"})
                  .ok());
  return canvas;
}

TEST(SvgExportTest, OutputIsWellFormedXml) {
  std::string svg = RenderCanvasSvg(MakeCanvas());
  auto parsed = xml::ParseDocument(svg);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << svg;
  EXPECT_EQ(parsed->TagName(parsed->root()), "svg");
}

TEST(SvgExportTest, DrawsOneRectPerBoxAndEdges) {
  Canvas canvas = MakeCanvas();
  std::string svg = RenderCanvasSvg(canvas);
  auto doc = xml::ParseDocument(svg);
  ASSERT_TRUE(doc.ok());
  int rects = 0;
  int lines = 0;
  for (xml::NodeId id = 0; id < doc->num_nodes(); ++id) {
    if (doc->node(id).kind != xml::NodeKind::kElement) continue;
    if (doc->TagName(id) == "rect") ++rects;
    if (doc->TagName(id) == "line") ++lines;
  }
  EXPECT_EQ(rects, 3);
  // child edge = 1 line, descendant edge = double line.
  EXPECT_EQ(lines, 3);
}

TEST(SvgExportTest, MarksOutputOrderedAndPredicates) {
  std::string svg = RenderCanvasSvg(MakeCanvas());
  EXPECT_NE(svg.find("ordered"), std::string::npos);
  EXPECT_NE(svg.find("~ lu"), std::string::npos);
  EXPECT_NE(svg.find("#c02020"), std::string::npos);  // output ring color
}

TEST(SvgExportTest, EscapesTagText) {
  Canvas canvas;
  canvas.AddNode(0, 0, "a<b");  // not a legal XML tag, but legal canvas text
  std::string svg = RenderCanvasSvg(canvas);
  auto parsed = xml::ParseDocument(svg);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_NE(svg.find("a&lt;b"), std::string::npos);
}

TEST(SvgExportTest, EmptyCanvasStillRenders) {
  Canvas canvas;
  std::string svg = RenderCanvasSvg(canvas);
  EXPECT_TRUE(xml::ParseDocument(svg).ok());
}

TEST(SvgExportTest, NegativeCoordinatesAreShifted) {
  Canvas canvas;
  canvas.AddNode(-500, -300, "far");
  std::string svg = RenderCanvasSvg(canvas);
  auto parsed = xml::ParseDocument(svg);
  ASSERT_TRUE(parsed.ok());
  // No negative x/y on the rect.
  EXPECT_EQ(svg.find("x=\"-"), std::string::npos) << svg;
  EXPECT_EQ(svg.find("y=\"-"), std::string::npos) << svg;
}

}  // namespace
}  // namespace lotusx::session
