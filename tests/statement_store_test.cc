// Statement-store coverage in three tiers:
//   * unit — aggregation, Top ordering, LRU eviction + counter, Reset;
//   * concurrency — N recording threads vs a single-threaded oracle of
//     per-fingerprint totals, and RESET racing live scrapes (both run
//     under tsan in CI — keep the suite names in ci.yml's regex);
//   * engine consistency — a scripted Engine workload whose STATEMENTS
//     aggregates must equal the totals summed off the returned
//     EvalStats, the same numbers EXPLAIN ANALYZE prints.

#include "common/statement_store.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "lotusx/engine.h"
#include "tests/test_util.h"
#include "twig/fingerprint.h"

namespace lotusx::stmt {
namespace {

ExecutionRecord MakeRecord(uint64_t fingerprint, double latency_usec = 100,
                           uint64_t rows = 1) {
  ExecutionRecord record;
  record.fingerprint = fingerprint;
  record.query_text = "//q[?]";
  record.algorithm = "tjfast";
  record.latency_usec = latency_usec;
  record.rows = rows;
  record.actual_rows = rows;
  return record;
}

// ------------------------------------------------------------------ unit

TEST(StatementStoreTest, AggregatesOneShapeAcrossExecutions) {
  StatementStore store(64);
  ExecutionRecord first = MakeRecord(42, /*latency_usec=*/100, /*rows=*/3);
  first.blocks_decoded = 10;
  first.blocks_skipped = 4;
  first.bytes_decoded = 1000;
  first.estimated_rows = 6;  // |6-3|/3 = 1.0 relative error
  store.Record(first);

  ExecutionRecord second = MakeRecord(42, /*latency_usec=*/300, /*rows=*/3);
  second.blocks_decoded = 2;
  second.estimated_rows = 3;  // exact -> 0 error
  store.Record(second);

  ExecutionRecord error = MakeRecord(42, /*latency_usec=*/50, /*rows=*/0);
  error.error = true;
  error.algorithm = {};
  store.Record(error);

  ExecutionRecord hit = MakeRecord(42, /*latency_usec=*/5, /*rows=*/3);
  hit.cache_hit = true;
  hit.algorithm = {};
  store.Record(hit);

  std::optional<StatementSnapshot> found = store.Find(42);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->calls, 4u);
  EXPECT_EQ(found->errors, 1u);
  EXPECT_EQ(found->cache_hits, 1u);
  EXPECT_EQ(found->rows, 9u);
  EXPECT_EQ(found->blocks_decoded, 12u);
  EXPECT_EQ(found->blocks_skipped, 4u);
  EXPECT_EQ(found->bytes_decoded, 1000u);
  EXPECT_DOUBLE_EQ(found->total_usec, 455.0);
  EXPECT_EQ(found->latency_usec.count, 4u);
  EXPECT_EQ(found->query_text, "//q[?]");

  // Plan distribution: only the two planned executions contribute, and
  // both carried estimates -> mean relative error (1.0 + 0.0) / 2.
  ASSERT_EQ(found->plans.size(), 1u);
  EXPECT_EQ(found->plans[0].algorithm, "tjfast");
  EXPECT_EQ(found->plans[0].calls, 2u);
  EXPECT_EQ(found->plans[0].estimated, 2u);
  EXPECT_DOUBLE_EQ(found->plans[0].MeanRowError(), 0.5);
}

TEST(StatementStoreTest, QueryTextIsFirstSighting) {
  StatementStore store(64);
  ExecutionRecord first = MakeRecord(7);
  first.query_text = "//a[?]";
  store.Record(first);
  ExecutionRecord second = MakeRecord(7);
  second.query_text = "//something-else";
  store.Record(second);
  ASSERT_TRUE(store.Find(7).has_value());
  EXPECT_EQ(store.Find(7)->query_text, "//a[?]");
}

TEST(StatementStoreTest, TopOrdersByTotalTimeDescending) {
  StatementStore store(64);
  store.Record(MakeRecord(1, /*latency_usec=*/10));
  store.Record(MakeRecord(2, /*latency_usec=*/1000));
  store.Record(MakeRecord(3, /*latency_usec=*/200));
  store.Record(MakeRecord(3, /*latency_usec=*/200));

  std::vector<StatementSnapshot> top = store.Top(10);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].fingerprint, 2u);
  EXPECT_EQ(top[1].fingerprint, 3u);
  EXPECT_EQ(top[2].fingerprint, 1u);

  // And n truncates after the sort, not before.
  top = store.Top(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].fingerprint, 2u);
}

TEST(StatementStoreTest, EvictsLeastRecentlyExecutedShape) {
  // capacity 8 over 8 shards -> one entry per shard. Fingerprints
  // 8/16/24 all land in shard 0, forcing evictions there.
  StatementStore store(8);
  store.Record(MakeRecord(8));
  store.Record(MakeRecord(16));  // evicts 8
  store.Record(MakeRecord(16));
  store.Record(MakeRecord(24));  // evicts 16
  EXPECT_EQ(store.evictions(), 2u);
  EXPECT_FALSE(store.Find(8).has_value());
  EXPECT_FALSE(store.Find(16).has_value());
  ASSERT_TRUE(store.Find(24).has_value());

  // A re-arriving evicted shape starts fresh (its history is gone).
  store.Record(MakeRecord(16));  // evicts 24
  EXPECT_EQ(store.evictions(), 3u);
  EXPECT_EQ(store.Find(16)->calls, 1u);
}

TEST(StatementStoreTest, EvictionBumpsTheRegistryCounter) {
  metrics::Registry registry;
  StatementStore store(8, &registry);
  metrics::Counter* evicted =
      registry.GetCounter("lotusx_evicted_statements_total");
  store.Record(MakeRecord(8));
  store.Record(MakeRecord(16));
  EXPECT_EQ(evicted->value(), 1u);
}

TEST(StatementStoreTest, ResetDropsEntriesButKeepsEvictionHistory) {
  StatementStore store(8);
  store.Record(MakeRecord(8));
  store.Record(MakeRecord(16));
  ASSERT_EQ(store.evictions(), 1u);
  store.Reset();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_TRUE(store.Top(10).empty());
  EXPECT_EQ(store.evictions(), 1u) << "evictions are lifetime-cumulative";
}

TEST(StatementStoreTest, RenderersCarryTheAggregates) {
  StatementStore store(64);
  ExecutionRecord record = MakeRecord(0xabcdef, /*latency_usec=*/100,
                                      /*rows=*/2);
  record.query_text = "//book[\"?\"]";
  store.Record(record);

  const std::string text = RenderStatementsText(store.Top(10));
  EXPECT_NE(text.find("fingerprint=0x0000000000abcdef"), std::string::npos)
      << text;
  EXPECT_NE(text.find("calls=1"), std::string::npos) << text;
  EXPECT_NE(text.find("tjfast"), std::string::npos) << text;

  const std::string json = RenderStatementsJson(store.Top(10));
  EXPECT_NE(json.find("\"statements\":["), std::string::npos) << json;
  EXPECT_NE(json.find("\"fingerprint\":\"0x0000000000abcdef\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"calls\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"latency_usec\""), std::string::npos) << json;
  // Escaping: the quote inside the query text must not break the JSON.
  EXPECT_NE(json.find("\\\""), std::string::npos) << json;
}

TEST(StatementStoreTest, KillSwitchRoundTrips) {
  const bool was = SetEnabled(false);
  EXPECT_FALSE(Enabled());
  SetEnabled(true);
  EXPECT_TRUE(Enabled());
  SetEnabled(was);
}

// ----------------------------------------------------------- concurrency

TEST(StatementStoreConcurrencyTest, MatchesSingleThreadedOracle) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  constexpr uint64_t kShapes = 13;  // spans every shard, forces sharing

  StatementStore store(64);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Deterministic per-thread schedule (no randomness: the oracle
        // below replays exactly this).
        const uint64_t fingerprint = 1 + (t * kPerThread + i) % kShapes;
        store.Record(MakeRecord(fingerprint, /*latency_usec=*/10,
                                /*rows=*/fingerprint));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Single-threaded oracle of per-fingerprint calls and rows.
  std::map<uint64_t, uint64_t> calls;
  std::map<uint64_t, uint64_t> rows;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      const uint64_t fingerprint = 1 + (t * kPerThread + i) % kShapes;
      calls[fingerprint] += 1;
      rows[fingerprint] += fingerprint;
    }
  }

  ASSERT_EQ(store.size(), kShapes) << "capacity 64 must not evict here";
  for (const auto& [fingerprint, expected_calls] : calls) {
    std::optional<StatementSnapshot> found = store.Find(fingerprint);
    ASSERT_TRUE(found.has_value()) << fingerprint;
    EXPECT_EQ(found->calls, expected_calls) << fingerprint;
    EXPECT_EQ(found->rows, rows[fingerprint]) << fingerprint;
    EXPECT_EQ(found->latency_usec.count, expected_calls) << fingerprint;
  }
}

TEST(StatementStoreConcurrencyTest, ResetRacesScrapesAndWriters) {
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 3000;

  StatementStore store(32);
  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < kPerWriter; ++i) {
        store.Record(MakeRecord(1 + (t + i) % 40));
      }
    });
  }
  threads.emplace_back([&store] {  // scraper
    for (int i = 0; i < 200; ++i) {
      for (const StatementSnapshot& snapshot : store.Top(10)) {
        // Internal consistency must hold in every snapshot, even ones
        // taken mid-reset.
        EXPECT_GE(snapshot.calls, snapshot.errors + snapshot.cache_hits);
      }
      (void)store.size();
      (void)RenderStatementsJson(store.Top(5));
    }
  });
  threads.emplace_back([&store] {  // resetter
    for (int i = 0; i < 50; ++i) store.Reset();
  });
  for (std::thread& thread : threads) thread.join();

  store.Reset();
  EXPECT_EQ(store.size(), 0u);
}

// ---------------------------------------------- engine-level consistency

TEST(StatementStoreEngineTest, AggregatesMatchExplainAnalyzeTotals) {
  // The scripted workload: the same shape three times with different
  // literals plus one distinct shape. The STATEMENTS row must equal the
  // totals summed off the EvalStats Engine returns — the same numbers
  // EXPLAIN ANALYZE renders per query.
  StatusOr<Engine> engine = Engine::FromXmlText(R"(<dblp>
    <article><author>jiaheng lu</author><title>twig joins</title></article>
    <article><author>chunbin lin</author><title>lotusx</title></article>
    <article><author>ting chen</author><title>xml search</title></article>
  </dblp>)");
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  StatementStore& store = StatementStore::Default();
  store.Reset();
  ASSERT_TRUE(metrics::Enabled());
  ASSERT_TRUE(Enabled());

  SearchOptions options;
  options.rewrite_on_empty = false;

  const std::vector<std::string> same_shape = {
      "//article[author[=\"jiaheng lu\"]]/title",
      "//article[author[=\"chunbin lin\"]]/title",
      "//article[author[=\"nobody\"]]/title",
  };
  uint64_t expected_rows = 0;
  uint64_t expected_blocks_decoded = 0;
  uint64_t expected_blocks_skipped = 0;
  uint64_t expected_bytes = 0;
  for (const std::string& query_text : same_shape) {
    StatusOr<SearchResult> result = engine->Search(query_text, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    expected_rows += result->results.size();
    expected_blocks_decoded += result->stats.posting_blocks_decoded;
    expected_blocks_skipped += result->stats.posting_blocks_skipped;
    expected_bytes += result->stats.posting_bytes_decoded;
  }
  // A structurally different query lands in its own row.
  ASSERT_TRUE(engine->Search("//article/author", options).ok());

  // The store keys on the parsed query + eval options, exactly as the
  // engine does.
  StatusOr<SearchResult> parsed = engine->Search(same_shape[0], options);
  ASSERT_TRUE(parsed.ok());
  const uint64_t fingerprint =
      twig::FingerprintQuery(parsed->executed_query, options.eval).value;
  expected_rows += parsed->results.size();
  expected_blocks_decoded += parsed->stats.posting_blocks_decoded;
  expected_blocks_skipped += parsed->stats.posting_blocks_skipped;
  expected_bytes += parsed->stats.posting_bytes_decoded;

  std::optional<StatementSnapshot> row = store.Find(fingerprint);
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->calls, 4u) << "three literals + the re-run collapse";
  EXPECT_EQ(row->errors, 0u);
  EXPECT_EQ(row->rows, expected_rows);
  EXPECT_EQ(row->blocks_decoded, expected_blocks_decoded);
  EXPECT_EQ(row->blocks_skipped, expected_blocks_skipped);
  EXPECT_EQ(row->bytes_decoded, expected_bytes);
  EXPECT_EQ(row->latency_usec.count, 4u);
  ASSERT_FALSE(row->plans.empty());
  EXPECT_EQ(row->plans[0].calls, 4u);
  EXPECT_GT(row->plans[0].estimated, 0u)
      << "planned executions must carry cardinality estimates";

  // The distinct shape must NOT have merged into this row.
  EXPECT_EQ(store.size(), 2u);
}

TEST(StatementStoreEngineTest, KillSwitchStopsRecording) {
  StatusOr<Engine> engine =
      Engine::FromXmlText("<a><b>x</b></a>");
  ASSERT_TRUE(engine.ok());
  StatementStore& store = StatementStore::Default();
  store.Reset();

  const bool was = SetEnabled(false);
  ASSERT_TRUE(engine->Search("//a/b").ok());
  EXPECT_EQ(store.size(), 0u) << "disabled store must see nothing";
  SetEnabled(true);
  ASSERT_TRUE(engine->Search("//a/b").ok());
  EXPECT_EQ(store.size(), 1u);
  SetEnabled(was);
  store.Reset();
}

}  // namespace
}  // namespace lotusx::stmt
