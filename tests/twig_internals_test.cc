// Unit tests for the twig engine's internal building blocks: candidate
// generation, the path-solution merge, and the order filter. These are
// exercised indirectly by every algorithm test; here their individual
// contracts are pinned down.

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "twig/candidates.h"
#include "twig/order_filter.h"
#include "twig/path_merge.h"
#include "twig/query_parser.h"

namespace lotusx::twig {
namespace {

using lotusx::testing::MustIndex;
using xml::NodeId;

constexpr std::string_view kXml = R"(<r>
  <a k="v1"><b>one two</b><c>three</c></a>
  <a k="v2"><b>two</b></a>
  <a><b>one</b><b>two three</b></a>
</r>)";

TwigQuery Q(std::string_view text) {
  auto result = ParseQuery(text);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

// ------------------------------------------------------------- Candidates

TEST(CandidatesTest, TagStreamWithoutPredicate) {
  auto indexed = MustIndex(kXml);
  TwigQuery query = Q("//b");
  std::vector<NodeId> candidates = CandidatesFor(indexed, query, 0);
  EXPECT_EQ(candidates.size(), 4u);
  EXPECT_TRUE(std::is_sorted(candidates.begin(), candidates.end()));
}

TEST(CandidatesTest, WildcardYieldsAllElements) {
  auto indexed = MustIndex(kXml);
  TwigQuery query = Q("//*");
  std::vector<NodeId> candidates = CandidatesFor(indexed, query, 0);
  int elements = 0;
  for (NodeId id = 0; id < indexed.document().num_nodes(); ++id) {
    if (indexed.document().node(id).kind == xml::NodeKind::kElement) {
      ++elements;
    }
  }
  EXPECT_EQ(candidates.size(), static_cast<size_t>(elements));
}

TEST(CandidatesTest, ContainsPredicateRequiresAllTokens) {
  auto indexed = MustIndex(kXml);
  TwigQuery query = Q(R"(//b[~"one two"])");
  std::vector<NodeId> candidates = CandidatesFor(indexed, query, 0);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(indexed.document().ContentString(candidates[0]), "one two");
}

TEST(CandidatesTest, EqualsPredicateIsExact) {
  auto indexed = MustIndex(kXml);
  EXPECT_EQ(CandidatesFor(indexed, Q(R"(//b[="two"])"), 0).size(), 1u);
  EXPECT_EQ(CandidatesFor(indexed, Q(R"(//b[="two "])"), 0).size(), 1u);
  EXPECT_EQ(CandidatesFor(indexed, Q(R"(//b[="tw"])"), 0).size(), 0u);
}

TEST(CandidatesTest, AttributePredicates) {
  auto indexed = MustIndex(kXml);
  EXPECT_EQ(CandidatesFor(indexed, Q(R"(//@k[="v1"])"), 0).size(), 1u);
  EXPECT_EQ(CandidatesFor(indexed, Q("//@k"), 0).size(), 2u);
}

TEST(CandidatesTest, UnknownTagYieldsNothing) {
  auto indexed = MustIndex(kXml);
  EXPECT_TRUE(CandidatesFor(indexed, Q("//zzz"), 0).empty());
}

TEST(CandidatesTest, ChildRootAxisPinsDocumentRoot) {
  auto indexed = MustIndex(kXml);
  EXPECT_EQ(CandidatesFor(indexed, Q("/r"), 0).size(), 1u);
  EXPECT_TRUE(CandidatesFor(indexed, Q("/a"), 0).empty());
}

TEST(CandidatesTest, NodeSatisfiesAgreesWithCandidates) {
  auto indexed = MustIndex(kXml);
  TwigQuery query = Q(R"(//b[~"two"])");
  std::vector<NodeId> candidates = CandidatesFor(indexed, query, 0);
  std::set<NodeId> set(candidates.begin(), candidates.end());
  for (NodeId id = 0; id < indexed.document().num_nodes(); ++id) {
    EXPECT_EQ(NodeSatisfies(indexed, query, 0, id), set.contains(id))
        << "node " << id;
  }
}

// -------------------------------------------------------------- PathMerge

/// Builds flat SolutionTables (stride = path length) from nested binding
/// vectors so the fixtures stay readable.
std::vector<SolutionTable> Tables(
    const std::vector<std::vector<QueryNodeId>>& paths,
    const std::vector<std::vector<std::vector<NodeId>>>& nested) {
  std::vector<SolutionTable> tables(nested.size());
  for (size_t p = 0; p < nested.size(); ++p) {
    tables[p].stride = paths[p].size();
    for (const std::vector<NodeId>& solution : nested[p]) {
      tables[p].AppendRow(solution.data());
    }
  }
  return tables;
}

TEST(PathMergeTest, SinglePathPassesThrough) {
  TwigQuery query = Q("//a/b");
  std::vector<std::vector<QueryNodeId>> paths = {{0, 1}};
  std::vector<std::vector<std::vector<NodeId>>> solutions = {
      {{10, 11}, {20, 21}}};
  uint64_t tuples = 0;
  std::vector<Match> merged =
      MergePathSolutions(query, paths, Tables(paths, solutions), &tuples);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].bindings, (std::vector<NodeId>{10, 11}));
  EXPECT_EQ(tuples, 2u);
}

TEST(PathMergeTest, JoinsOnSharedPrefix) {
  TwigQuery query = Q("//a[b]/c");  // paths (a,b) and (a,c) share a
  std::vector<std::vector<QueryNodeId>> paths = {{0, 1}, {0, 2}};
  std::vector<std::vector<std::vector<NodeId>>> solutions = {
      {{10, 11}, {20, 21}},          // (a,b)
      {{10, 12}, {10, 13}, {30, 31}}  // (a,c); 30 has no b partner
  };
  uint64_t tuples = 0;
  std::vector<Match> merged =
      MergePathSolutions(query, paths, Tables(paths, solutions), &tuples);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].bindings, (std::vector<NodeId>{10, 11, 12}));
  EXPECT_EQ(merged[1].bindings, (std::vector<NodeId>{10, 11, 13}));
}

TEST(PathMergeTest, EmptySolutionListKillsEverything) {
  TwigQuery query = Q("//a[b]/c");
  std::vector<std::vector<QueryNodeId>> paths = {{0, 1}, {0, 2}};
  std::vector<std::vector<std::vector<NodeId>>> solutions = {
      {{10, 11}}, {}};
  uint64_t tuples = 0;
  EXPECT_TRUE(
      MergePathSolutions(query, paths, Tables(paths, solutions), &tuples)
          .empty());
}

TEST(PathMergeTest, OrderPruningDropsViolatingPartials) {
  auto indexed = MustIndex("<r><a><b>x</b><c>y</c></a></r>");
  const xml::Document& document = indexed.document();
  // b precedes c in the document; demand the reverse.
  TwigQuery query = Q("//a[ordered][c][b]");
  NodeId a = 1;
  NodeId b = 2;  // element b
  NodeId c = 4;  // element c
  ASSERT_EQ(document.TagName(b), "b");
  ASSERT_EQ(document.TagName(c), "c");
  std::vector<std::vector<QueryNodeId>> paths = {{0, 1}, {0, 2}};
  std::vector<std::vector<std::vector<NodeId>>> solutions = {{{a, c}},
                                                             {{a, b}}};
  uint64_t tuples = 0;
  MergeOptions options;
  options.prune_order = true;
  options.document = &document;
  EXPECT_TRUE(
      MergePathSolutions(query, paths, Tables(paths, solutions), &tuples,
                         options)
          .empty());
  // Without pruning the (invalid) tuple survives the merge.
  EXPECT_EQ(MergePathSolutions(query, paths, Tables(paths, solutions), &tuples)
                .size(),
            1u);
}

// ------------------------------------------------------------ OrderFilter

TEST(OrderFilterTest, DisjointPrecedingSiblingsPass) {
  auto indexed = MustIndex("<r><a><b>x</b><c>y</c></a></r>");
  TwigQuery query = Q("//a[ordered][b][c]");
  auto oracle = lotusx::testing::BruteForceMatches(indexed, query,
                                                   /*apply_order=*/false);
  ASSERT_EQ(oracle.size(), 1u);
  EXPECT_TRUE(
      SatisfiesOrderConstraints(indexed.document(), query, oracle[0]));
  TwigQuery reversed = Q("//a[ordered][c][b]");
  auto reversed_oracle = lotusx::testing::BruteForceMatches(
      indexed, reversed, /*apply_order=*/false);
  ASSERT_EQ(reversed_oracle.size(), 1u);
  EXPECT_FALSE(SatisfiesOrderConstraints(indexed.document(), reversed,
                                         reversed_oracle[0]));
}

TEST(OrderFilterTest, NestedBindingsViolateOrder) {
  // b contains c: they are not disjoint, so neither order holds.
  auto indexed = MustIndex("<r><a><b><c>x</c></b></a></r>");
  for (std::string_view text :
       {"//a[ordered][b][//c]", "//a[ordered][//c][b]"}) {
    TwigQuery query = Q(text);
    auto unordered = lotusx::testing::BruteForceMatches(
        indexed, query, /*apply_order=*/false);
    ASSERT_EQ(unordered.size(), 1u) << text;
    EXPECT_FALSE(SatisfiesOrderConstraints(indexed.document(), query,
                                           unordered[0]))
        << text;
  }
}

TEST(OrderFilterTest, FilterByOrderRemovesInPlace) {
  auto indexed = MustIndex("<r><a><b>x</b><c>y</c><b>z</b></a></r>");
  TwigQuery query = Q("//a[ordered][b][c]");
  std::vector<Match> matches = lotusx::testing::BruteForceMatches(
      indexed, query, /*apply_order=*/false);
  ASSERT_EQ(matches.size(), 2u);  // two b choices
  FilterByOrder(indexed.document(), query, &matches);
  ASSERT_EQ(matches.size(), 1u);  // only the first b precedes c
}

TEST(OrderFilterTest, UnorderedNodesAreIgnored) {
  auto indexed = MustIndex("<r><a><c>y</c><b>x</b></a></r>");
  TwigQuery query = Q("//a[b][c]");  // no [ordered]
  std::vector<Match> matches = lotusx::testing::BruteForceMatches(
      indexed, query, /*apply_order=*/false);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_TRUE(
      SatisfiesOrderConstraints(indexed.document(), query, matches[0]));
}

}  // namespace
}  // namespace lotusx::twig
