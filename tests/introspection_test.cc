// The introspection layer end to end: the span tree built by nested
// QueryTrace/StageSpan/NamedSpan scopes, trace adoption across thread
// pool boundaries, the SLOWLOG and TRACE retention rings (wraparound,
// reset, concurrent writers), deterministic sampling, the CLIENTS
// registry, the process-level gauges, and the batch slow-query
// attribution regression (worker-side stage time must land in the
// submitting request's entry).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/client_registry.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/process_metrics.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "common/trace.h"
#include "common/trace_store.h"
#include "lotusx/engine.h"

namespace lotusx::trace {
namespace {

/// Spin long enough that a Timer sees a strictly positive elapsed time.
void BurnSomeTime() {
  Timer timer;
  while (timer.ElapsedMicros() < 200.0) {
  }
}

/// Scoped defaults for retention tests: everything is slow, everything
/// is sampled, rings start empty, and log lines go nowhere.
class IntrospectionEnv {
 public:
  IntrospectionEnv()
      : threshold_(SetSlowQueryThresholdMillis(0)),
        sample_rate_(SetTraceSampleRate(1.0)),
        sink_(SetLogSinkForTest([](std::string_view) {})) {
    SlowLog::Default().Reset();
    TraceStore::Default().Reset();
  }
  ~IntrospectionEnv() {
    SetSlowQueryThresholdMillis(threshold_);
    SetTraceSampleRate(sample_rate_);
    SetLogSinkForTest(std::move(sink_));
    SlowLog::Default().Reset();
    TraceStore::Default().Reset();
  }

 private:
  double threshold_;
  double sample_rate_;
  LogSink sink_;
};

// ------------------------------------------------------------- span tree

TEST(TraceTreeTest, NestedScopesBuildSpansOnTheRoot) {
  IntrospectionEnv env;
  uint64_t trace_id = 0;
  {
    QueryTrace root("net");
    trace_id = root.trace_id();
    ASSERT_NE(trace_id, 0u);
    EXPECT_TRUE(root.sampled());  // rate 1.0
    {
      QueryTrace session("session");
      EXPECT_EQ(session.trace_id(), trace_id);  // inherited, not minted
      EXPECT_EQ(session.root(), &root);
      StageSpan span(Stage::kParse);
      BurnSomeTime();
    }
    NamedSpan named("chunk");
    BurnSomeTime();
  }
  std::optional<CompletedTrace> retained =
      TraceStore::Default().Find(trace_id);
  ASSERT_TRUE(retained.has_value());
  std::vector<std::string> names;
  names.reserve(retained->spans.size());
  for (const TraceSpan& span : retained->spans) names.push_back(span.name);
  EXPECT_NE(std::find(names.begin(), names.end(), "session"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "parse"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "chunk"), names.end());
  // Timestamps are offsets into the root, so they fit inside its total.
  for (const TraceSpan& span : retained->spans) {
    EXPECT_GE(span.start_us, 0.0) << span.name;
    EXPECT_LE(span.start_us + span.duration_us,
              retained->total_ms * 1000.0 * 1.5)
        << span.name;
  }
}

TEST(TraceTreeTest, UnsampledRequestsKeepStageTotalsButNoSpans) {
  IntrospectionEnv env;
  SetTraceSampleRate(0.0);
  uint64_t trace_id = 0;
  {
    QueryTrace root("net");
    trace_id = root.trace_id();
    EXPECT_FALSE(root.sampled());
    StageSpan span(Stage::kExecute);
    BurnSomeTime();
  }
  // Slow (threshold 0) => the SLOWLOG entry still has the breakdown...
  std::vector<SlowQueryEntry> entries = SlowLog::Default().Last(1);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_GT(entries[0].stage_ms[static_cast<int>(Stage::kExecute)], 0.0);
  // ...and the trace is retained (slow queries bypass sampling) with an
  // empty span tree.
  std::optional<CompletedTrace> retained =
      TraceStore::Default().Find(trace_id);
  ASSERT_TRUE(retained.has_value());
  EXPECT_TRUE(retained->spans.empty());
}

TEST(TraceTreeTest, AdoptionAccountsWorkerTimeIntoTheRoot) {
  IntrospectionEnv env;
  QueryTrace root("net");
  std::thread worker([&root] {
    EXPECT_EQ(QueryTrace::Current(), nullptr);
    QueryTrace::Adoption adopt(&root);
    EXPECT_EQ(QueryTrace::Current(), &root);
    StageSpan span(Stage::kRank);
    BurnSomeTime();
  });
  worker.join();
  EXPECT_GT(root.stage_millis(Stage::kRank), 0.0);
}

TEST(TraceTreeTest, NullAdoptionIsANoOp) {
  QueryTrace::Adoption adopt(nullptr);
  EXPECT_EQ(QueryTrace::Current(), nullptr);
}

TEST(TraceTreeTest, SamplingIsDeterministicInTheTraceId) {
  IntrospectionEnv env;
  SetTraceSampleRate(0.5);
  for (uint64_t id = 1; id <= 64; ++id) {
    QueryTrace first("a", id);
    bool verdict;
    {
      QueryTrace nested("b");  // same request, inherits the verdict
      verdict = nested.sampled();
    }
    QueryTrace second("c", id);
    EXPECT_EQ(first.sampled(), verdict) << id;
    EXPECT_EQ(first.sampled(), second.sampled()) << id;
  }
}

TEST(TraceTreeTest, MintedIdsAreUniqueAcrossThreads) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::vector<uint64_t>> minted(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &minted] {
      minted[t].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) minted[t].push_back(MintTraceId());
    });
  }
  for (std::thread& thread : threads) thread.join();
  std::set<uint64_t> all;
  for (const std::vector<uint64_t>& ids : minted) {
    for (uint64_t id : ids) {
      EXPECT_NE(id, 0u);
      EXPECT_TRUE(all.insert(id).second) << "duplicate trace id " << id;
    }
  }
}

// -------------------------------------------------------- retention rings

TEST(SlowLogTest, KeepsTheNewestEntriesOnWraparound) {
  SlowLog ring(4);
  for (int i = 1; i <= 10; ++i) {
    SlowQueryEntry entry;
    entry.query = "q" + std::to_string(i);
    ring.Add(entry);
  }
  EXPECT_EQ(ring.Len(), 4u);
  EXPECT_EQ(ring.TotalAdded(), 10u);
  std::vector<SlowQueryEntry> last = ring.Last(100);
  ASSERT_EQ(last.size(), 4u);
  // Newest first, ids assigned monotonically by the ring.
  EXPECT_EQ(last[0].query, "q10");
  EXPECT_EQ(last[3].query, "q7");
  for (size_t i = 1; i < last.size(); ++i) {
    EXPECT_LT(last[i].id, last[i - 1].id);
  }
}

TEST(SlowLogTest, ResetClearsEntriesButNotTheTotal) {
  SlowLog ring(4);
  ring.Add(SlowQueryEntry{});
  ring.Add(SlowQueryEntry{});
  ring.Reset();
  EXPECT_EQ(ring.Len(), 0u);
  EXPECT_EQ(ring.TotalAdded(), 2u);
  ring.Add(SlowQueryEntry{});
  // Ids keep rising across resets so entries stay distinguishable.
  EXPECT_EQ(ring.Last(1)[0].id, 3u);
}

TEST(SlowLogTest, ConcurrentAddAndResetStaySane) {
  SlowLog ring(16);
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 500;
  std::atomic<bool> stop{false};
  std::thread resetter([&ring, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      ring.Reset();
      ring.Len();
      ring.Last(8);
    }
  });
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&ring] {
      for (int i = 0; i < kPerWriter; ++i) {
        SlowQueryEntry entry;
        entry.total_ms = i;
        ring.Add(entry);
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  stop = true;
  resetter.join();
  EXPECT_EQ(ring.TotalAdded(),
            static_cast<uint64_t>(kWriters) * kPerWriter);
  EXPECT_LE(ring.Len(), 16u);
}

TEST(TraceStoreTest, KeepsTheNewestTracesAndFindsById) {
  TraceStore store(4);
  for (uint64_t id = 1; id <= 10; ++id) {
    CompletedTrace trace;
    trace.trace_id = id;
    store.Add(trace);
  }
  EXPECT_EQ(store.Len(), 4u);
  EXPECT_FALSE(store.Find(1).has_value());  // evicted
  ASSERT_TRUE(store.Find(9).has_value());
  EXPECT_EQ(store.Find(9)->trace_id, 9u);
  std::vector<CompletedTrace> last = store.Last(2);
  ASSERT_EQ(last.size(), 2u);
  EXPECT_EQ(last[0].trace_id, 10u);
  EXPECT_EQ(last[1].trace_id, 9u);
  store.Reset();
  EXPECT_EQ(store.Len(), 0u);
}

TEST(TraceStoreTest, RenderersProduceStableMachineReadableForms) {
  SlowQueryEntry entry;
  entry.id = 7;
  entry.trace_id = 0x1234;
  entry.component = "engine";
  entry.query = "//article[author]/\"title\"";
  entry.detail = "twigstack";
  entry.total_ms = 12.5;
  entry.stage_ms[static_cast<int>(Stage::kExecute)] = 9.25;
  std::string json = RenderSlowLogJson({entry});
  EXPECT_NE(json.find("\"trace_id\":\"0x0000000000001234\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"execute\""), std::string::npos) << json;
  // The query's inner quotes must be escaped, not emitted raw.
  EXPECT_NE(json.find("\\\"title\\\""), std::string::npos) << json;

  CompletedTrace trace;
  trace.trace_id = 0x1234;
  trace.component = "net";
  trace.total_ms = 3.0;
  TraceSpan span;
  span.name = "execute";
  span.start_us = 10;
  span.duration_us = 500;
  span.thread = 2;
  trace.spans.push_back(span);
  std::string chrome = ChromeTraceJson({trace});
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos) << chrome;
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos) << chrome;
  EXPECT_NE(chrome.find("\"name\":\"execute\""), std::string::npos) << chrome;

  std::string text = RenderSlowLogText({entry});
  EXPECT_NE(text.find("0x0000000000001234"), std::string::npos) << text;
  EXPECT_NE(text.find("execute"), std::string::npos) << text;
  EXPECT_EQ(RenderSlowLogText({}), "(empty)");
}

// --------------------------------------------------------- batch fan-out

// Regression: a batch submitted under one request trace must attribute
// the chunks' stage time (executed on pool workers) to the submitting
// request's SLOWLOG entry, not lose it — and with sampling on, the
// chunk spans must appear in the retained trace.
TEST(IntrospectionTest, SearchBatchSlowEntryCarriesWorkerStageTimes) {
  IntrospectionEnv env;
  StatusOr<Engine> engine = Engine::FromXmlText(R"(<dblp>
    <article><author>jiaheng lu</author><title>twig joins</title></article>
    <article><author>chunbin lin</author><title>lotusx</title></article>
    <article><author>wei wang</author><title>indexing xml</title></article>
    <article><author>mary smith</author><title>query models</title></article>
  </dblp>)");
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  ThreadPool pool(2);
  const std::vector<std::string> queries = {
      "//article[author]", "//article[title]", "//article/author",
      "//article/title"};
  uint64_t trace_id = 0;
  {
    QueryTrace root("batch");
    root.set_query("SearchBatch x" + std::to_string(queries.size()));
    trace_id = root.trace_id();
    std::vector<StatusOr<SearchResult>> results =
        engine->SearchBatch(queries, {}, &pool);
    ASSERT_EQ(results.size(), queries.size());
    for (const StatusOr<SearchResult>& result : results) {
      EXPECT_TRUE(result.ok()) << result.status().ToString();
    }
  }
  std::vector<SlowQueryEntry> entries = SlowLog::Default().Last(100);
  const SlowQueryEntry* batch_entry = nullptr;
  for (const SlowQueryEntry& entry : entries) {
    if (entry.trace_id == trace_id) batch_entry = &entry;
  }
  ASSERT_NE(batch_entry, nullptr) << "batch root missing from SLOWLOG";
  EXPECT_EQ(batch_entry->component, "batch");
  EXPECT_EQ(batch_entry->query, "SearchBatch x4");
  // The execute stage runs inside the chunks, on pool workers; its time
  // must surface in the submitting request's breakdown.
  EXPECT_GT(batch_entry->stage_ms[static_cast<int>(Stage::kExecute)], 0.0);

  std::optional<CompletedTrace> retained =
      TraceStore::Default().Find(trace_id);
  ASSERT_TRUE(retained.has_value());
  bool has_chunk_span = false;
  for (const TraceSpan& span : retained->spans) {
    if (span.name == "chunk") has_chunk_span = true;
  }
  EXPECT_TRUE(has_chunk_span) << "chunk spans missing from retained trace";
}

// ------------------------------------------------------- client registry

TEST(ClientRegistryTest, RegisterSnapshotUnregisterRoundTrip) {
  ClientRegistry& registry = ClientRegistry::Default();
  const size_t before = registry.size();
  std::shared_ptr<ClientRegistry::Handle> handle =
      registry.Register(42, "127.0.0.1:5000");
  EXPECT_EQ(registry.size(), before + 1);
  handle->RecordBytesIn(100);
  handle->RecordBytesOut(40);
  handle->SetPipelined(3);
  handle->SetInFlight(true);
  handle->SetLastVerb("QUERY");

  std::vector<ClientInfo> snapshot = registry.Snapshot();
  const ClientInfo* info = nullptr;
  for (const ClientInfo& client : snapshot) {
    if (client.fd == 42) info = &client;
  }
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->peer, "127.0.0.1:5000");
  EXPECT_EQ(info->bytes_in, 100u);
  EXPECT_EQ(info->bytes_out, 40u);
  EXPECT_EQ(info->pipelined, 3u);
  EXPECT_TRUE(info->in_flight);
  EXPECT_EQ(info->last_verb, "QUERY");
  EXPECT_GE(info->age_seconds, 0.0);

  std::string rendered = RenderClientsText(snapshot);
  EXPECT_NE(rendered.find("fd=42"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("peer=127.0.0.1:5000"), std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("last_verb=QUERY"), std::string::npos) << rendered;

  registry.Unregister(handle);
  EXPECT_EQ(registry.size(), before);
  registry.Unregister(handle);  // idempotent
  EXPECT_EQ(registry.size(), before);
  registry.Unregister(nullptr);  // null-safe
}

TEST(ClientRegistryTest, ConcurrentUpdatesWhileSnapshotting) {
  ClientRegistry& registry = ClientRegistry::Default();
  std::shared_ptr<ClientRegistry::Handle> handle =
      registry.Register(43, "127.0.0.1:5001");
  std::atomic<bool> stop{false};
  std::thread updater([&handle, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      handle->RecordBytesIn(1);
      handle->SetPipelined(2);
      handle->SetLastVerb("ADD");
    }
  });
  for (int i = 0; i < 200; ++i) {
    std::vector<ClientInfo> snapshot = registry.Snapshot();
    RenderClientsText(snapshot);
  }
  stop = true;
  updater.join();
  registry.Unregister(handle);
}

// -------------------------------------------------------- process gauges

TEST(IntrospectionTest, ProcessMetricsLandInTheRegistry) {
  metrics::UpdateProcessMetrics();
  const std::string text = metrics::Registry::Default().RenderText();
  EXPECT_NE(text.find("lotusx_process_uptime_seconds"), std::string::npos);
  EXPECT_NE(text.find("lotusx_process_rss_bytes"), std::string::npos);
  EXPECT_NE(text.find("lotusx_process_open_fds"), std::string::npos);
  EXPECT_NE(text.find("lotusx_build_info{"), std::string::npos);
  EXPECT_NE(text.find("git_sha="), std::string::npos);
  EXPECT_FALSE(metrics::BuildVersion().empty());
  EXPECT_FALSE(metrics::BuildGitSha().empty());
}

TEST(IntrospectionTest, TraceIdFormatRoundTrips) {
  EXPECT_EQ(FormatTraceId(0x1234), "0x0000000000001234");
  EXPECT_EQ(ParseTraceId("0x0000000000001234"), 0x1234u);
  EXPECT_EQ(ParseTraceId("0000000000001234"), 0x1234u);
  EXPECT_EQ(ParseTraceId("not-an-id"), 0u);
  EXPECT_EQ(ParseTraceId(""), 0u);
}

}  // namespace
}  // namespace lotusx::trace
