// Experiment E10 (ablation) — structural-summary stream pruning: before
// any join runs, each query node's input stream is restricted to the
// DataGuide positions the query can actually bind (SchemaBindings). The
// optimization reuses LotusX's position-awareness machinery for
// evaluation itself.
//
// Expected shape: identical answers (verified); big scan/time reductions
// exactly where a tag is structurally overloaded (many positions, few
// feasible) — recursive corpora and generic tags like name/title — and
// no-ops (~1.0x) where the schema is already discriminating.

#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/datagen.h"
#include "index/indexed_document.h"
#include "twig/evaluator.h"
#include "twig/query_parser.h"

namespace lotusx {
namespace {

using bench::Fmt;
using bench::MedianMillis;
using bench::Table;

void Run(std::string_view corpus, const index::IndexedDocument& indexed,
         const std::vector<std::string>& queries, Table* table) {
  for (const std::string& text : queries) {
    twig::TwigQuery query = twig::ParseQuery(text).value();
    twig::EvalOptions plain;
    plain.schema_prune_streams = false;
    twig::EvalOptions pruned;
    pruned.schema_prune_streams = true;

    twig::QueryResult plain_result;
    double plain_ms = MedianMillis(5, [&] {
      auto result = twig::Evaluate(indexed, query, plain);
      CHECK(result.ok());
      plain_result = std::move(result).value();
    });
    twig::QueryResult pruned_result;
    double pruned_ms = MedianMillis(5, [&] {
      auto result = twig::Evaluate(indexed, query, pruned);
      CHECK(result.ok());
      pruned_result = std::move(result).value();
    });
    CHECK(plain_result.matches == pruned_result.matches)
        << "pruning changed answers: " << text;

    table->AddRow(
        {std::string(corpus), text,
         std::to_string(plain_result.stats.candidates_scanned),
         std::to_string(pruned_result.stats.candidates_scanned),
         Fmt(plain_ms, 2), Fmt(pruned_ms, 2),
         Fmt(plain_ms / std::max(pruned_ms, 1e-3), 2)});
  }
}

}  // namespace
}  // namespace lotusx

int main() {
  std::printf(
      "E10 (ablation): structural-summary stream pruning "
      "(schema_prune_streams)\n(answers verified identical in every "
      "row)\n\n");
  lotusx::bench::Table table({"corpus", "query", "scanned", "scanned+prune",
                              "ms", "ms+prune", "speedup"});
  {
    lotusx::index::IndexedDocument store(
        lotusx::datagen::GenerateStoreWithApproxNodes(31, 150'000));
    // "name" lives under store/category/product: the query context rules
    // most positions out.
    lotusx::Run("store", store,
                {"//product[review]/name", "//category/name",
                 "//store/name", "//review[rating]/reviewer"},
                &table);
  }
  {
    lotusx::index::IndexedDocument treebank(
        lotusx::datagen::GenerateTreebankWithApproxNodes(31, 120'000));
    lotusx::Run("treebank", treebank,
                {"//s/np/pp", "//sbar//whnp", "//vp[np]/pp"}, &table);
  }
  {
    lotusx::index::IndexedDocument dblp(
        lotusx::datagen::GenerateDblpWithApproxNodes(31, 150'000));
    lotusx::Run("dblp", dblp,
                {"//book/author", "//article[author]/title"}, &table);
  }
  table.Print();
  std::printf(
      "\nexpected shape: order-of-magnitude wins where the context rules\n"
      "out most of a tag's positions (store //category/name, //store/name)\n"
      "and at worst a small constant overhead (the filter pass itself)\n"
      "where the schema cannot prune anything.\n");
  return 0;
}
