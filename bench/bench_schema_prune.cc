// Experiment E10 (ablation) — structural-summary stream pruning: before
// any join runs, each query node's input stream is restricted to the
// DataGuide positions the query can actually bind (SchemaBindings). The
// optimization reuses LotusX's position-awareness machinery for
// evaluation itself.
//
// Expected shape: identical answers (verified); big scan/time reductions
// exactly where a tag is structurally overloaded (many positions, few
// feasible) — recursive corpora and generic tags like name/title — and
// no-ops (~1.0x) where the schema is already discriminating.

#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/datagen.h"
#include "index/indexed_document.h"
#include "twig/evaluator.h"
#include "twig/query_parser.h"

namespace lotusx {
namespace {

using bench::Fmt;
using bench::Table;

void Run(std::string_view corpus, const index::IndexedDocument& indexed,
         const std::vector<std::string>& queries, Table* table) {
  for (const std::string& text : queries) {
    twig::TwigQuery query = bench::MustParse(text);
    bench::TimedEval plain =
        bench::TimedEvaluate(indexed, query, bench::PruneEval(false));
    bench::TimedEval pruned =
        bench::TimedEvaluate(indexed, query, bench::PruneEval(true));
    CHECK(plain.result.matches == pruned.result.matches)
        << "pruning changed answers: " << text;

    table->AddRow(
        {std::string(corpus), text,
         std::to_string(plain.result.stats.candidates_scanned),
         std::to_string(pruned.result.stats.candidates_scanned),
         Fmt(plain.ms, 2), Fmt(pruned.ms, 2),
         Fmt(plain.ms / std::max(pruned.ms, 1e-3), 2)});
  }
}

}  // namespace
}  // namespace lotusx

int main(int argc, char** argv) {
  std::printf(
      "E10 (ablation): structural-summary stream pruning "
      "(schema_prune_streams)\n(answers verified identical in every "
      "row)\n\n");
  lotusx::bench::Table table({"corpus", "query", "scanned", "scanned+prune",
                              "ms", "ms+prune", "speedup"});
  {
    lotusx::index::IndexedDocument store =
        lotusx::bench::MakeStore(31, 150'000);
    // "name" lives under store/category/product: the query context rules
    // most positions out.
    lotusx::Run("store", store,
                {"//product[review]/name", "//category/name",
                 "//store/name", "//review[rating]/reviewer"},
                &table);
  }
  {
    lotusx::index::IndexedDocument treebank =
        lotusx::bench::MakeTreebank(31, 120'000);
    lotusx::Run("treebank", treebank,
                {"//s/np/pp", "//sbar//whnp", "//vp[np]/pp"}, &table);
  }
  {
    lotusx::index::IndexedDocument dblp =
        lotusx::bench::MakeDblp(31, 150'000);
    lotusx::Run("dblp", dblp,
                {"//book/author", "//article[author]/title"}, &table);
  }
  table.Print();
  std::printf(
      "\nexpected shape: order-of-magnitude wins where the context rules\n"
      "out most of a tag's positions (store //category/name, //store/name)\n"
      "and at worst a small constant overhead (the filter pass itself)\n"
      "where the schema cannot prune anything.\n");
  return lotusx::bench::WriteJsonIfRequested(argc, argv);
}
