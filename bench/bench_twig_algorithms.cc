// Experiment E3 — twig join algorithms: the binary structural join
// baseline vs the holistic algorithms (PathStack, TwigStack) vs the
// extended-Dewey TJFast-style engine LotusX builds on.
//
// Expected shape: holistic algorithms dominate the binary join on branchy
// twigs (the classic intermediate-result blowup, visible in the
// "intermed" column); TJFast additionally wins on parent-child-rich
// queries because it scans only leaf streams (see "scanned").

#include <array>
#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/datagen.h"
#include "index/indexed_document.h"
#include "twig/evaluator.h"
#include "twig/query_parser.h"

namespace lotusx {
namespace {

using bench::Fmt;
using bench::Table;
using twig::Algorithm;

struct Workload {
  std::string name;
  std::string query;
};

const std::vector<Workload>& DblpWorkloads() {
  static const std::vector<Workload> workloads = {
      {"path-short", "//article/title"},
      {"path-deep", "/dblp/article/author"},
      {"path-ad", "//dblp//author"},
      {"twig-2", "//article[author]/title"},
      {"twig-3", "//article[author][year]/title"},
      {"twig-value", R"(//article[year[="2005"]]/title)"},
      // The classic blowup case: unselective branches joined before a
      // highly selective one. The binary join materializes every
      // article x author x title combination before the year filter;
      // TwigStack's getNext skips articles whose subtree lacks a
      // matching year head element.
      {"twig-selective", R"(//article[author][title]/year[="1995"])"},
      {"twig-star", "//*[author][title]/year"},
  };
  return workloads;
}

const std::vector<Workload>& TreebankWorkloads() {
  static const std::vector<Workload> workloads = {
      {"deep-recursive-ad", "//np//np//pp"},
      {"deep-recursive-pc", "//vp/np/pp"},
      {"recursive-twig", "//s[//np][//vp]"},
      {"self-nested", "//np[np]//np"},
  };
  return workloads;
}

const std::vector<Workload>& XmarkWorkloads() {
  static const std::vector<Workload> workloads = {
      {"recursive-ad", "//listitem//text"},
      {"recursive-twig", "//parlist[listitem//parlist]"},
      {"branchy", "//item[location][payment][mailbox]/name"},
      {"deep-pc", "//item/description/parlist/listitem"},
  };
  return workloads;
}

void RunCorpus(std::string_view corpus_name,
               const index::IndexedDocument& indexed,
               const std::vector<Workload>& workloads, Table* table) {
  for (const Workload& workload : workloads) {
    twig::TwigQuery query = bench::MustParse(workload.query);
    // 5 variants: the 4 algorithms plus the selectivity-reordered binary
    // join (the optimizer lever for the baseline).
    for (int variant = 0; variant < 5; ++variant) {
      Algorithm algorithm =
          std::array<Algorithm, 5>{Algorithm::kStructuralJoin,
                                   Algorithm::kStructuralJoin,
                                   Algorithm::kPathStack,
                                   Algorithm::kTwigStack,
                                   Algorithm::kTJFast}[variant];
      if (algorithm == Algorithm::kPathStack && !query.IsPath()) continue;
      if (variant == 1 && query.IsPath()) continue;  // reorder no-ops
      bench::TimedEval timed = bench::TimedEvaluate(
          indexed, query,
          bench::EvalWith(algorithm, /*reorder_binary_joins=*/variant == 1));
      table->AddRow({std::string(corpus_name), workload.name,
                     timed.result.stats.algorithm, Fmt(timed.ms, 2),
                     std::to_string(timed.result.stats.candidates_scanned),
                     std::to_string(timed.result.stats.intermediate_tuples),
                     std::to_string(timed.result.stats.matches)});
    }
  }
}

}  // namespace
}  // namespace lotusx

int main(int argc, char** argv) {
  std::printf(
      "E3: twig join algorithms (median of 5 runs; 'intermed' counts "
      "materialized\nintermediate tuples / path solutions, the holistic "
      "papers' cost metric)\n\n");

  // --scale N replaces the ladder with one rung of N x the 20k base
  // corpus, so large-corpus runs (e.g. --scale 10 or 100) don't pay for
  // the small rungs first.
  std::vector<int64_t> ladder = {20'000, 100'000, 400'000};
  if (int64_t scale = lotusx::bench::ScaleFromArgs(argc, argv); scale > 0) {
    ladder = {20'000 * scale};
  }
  for (int64_t nodes : lotusx::bench::Scales(std::move(ladder))) {
    lotusx::bench::Table table({"corpus", "workload", "algorithm", "ms",
                                "scanned", "intermed", "matches"});
    {
      lotusx::index::IndexedDocument indexed = lotusx::bench::MakeDblp(3, nodes);
      std::printf("--- dblp, %d nodes ---\n",
                  indexed.document().num_nodes());
      lotusx::RunCorpus("dblp", indexed, lotusx::DblpWorkloads(), &table);
    }
    {
      lotusx::index::IndexedDocument indexed =
          lotusx::bench::MakeXmark(3, nodes / 2);
      std::printf("--- xmark, %d nodes ---\n",
                  indexed.document().num_nodes());
      lotusx::RunCorpus("xmark", indexed, lotusx::XmarkWorkloads(), &table);
    }
    {
      lotusx::index::IndexedDocument indexed =
          lotusx::bench::MakeTreebank(3, nodes / 2);
      std::printf("--- treebank, %d nodes ---\n",
                  indexed.document().num_nodes());
      lotusx::RunCorpus("treebank", indexed, lotusx::TreebankWorkloads(),
                        &table);
    }
    table.Print();
    std::printf("\n");
  }
  std::printf(
      "expected shape: on twig-selective the structural join materializes\n"
      "orders of magnitude more intermediate tuples than twigstack (the\n"
      "holistic-join headline result); tjfast consistently scans the\n"
      "fewest elements (leaf streams only). On friendly workloads where\n"
      "every edge is selective, the simpler algorithms stay competitive.\n");
  return lotusx::bench::WriteJsonIfRequested(argc, argv);
}
