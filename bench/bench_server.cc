// Serving-layer benchmark: drives the epoll TCP server (net/server.h)
// with many concurrent pipelined connections from a single-threaded
// epoll client in the same process, and reports per-command round-trip
// latency (p50/p95/p99) plus aggregate command throughput.
//
// The command mix is deliberately cheap (ADD/EDGE/QUERY/SHOW/TYPE):
// the subject under test is the serving layer — framing, scheduling,
// backpressure, fan-out to the worker pool — not the query engine,
// which has its own benches.
//
// Runs three ways against fresh servers: the default observability
// stack (metrics, per-command traces, slow-query detection, statement
// aggregation), with metrics::SetEnabled(false), and with only the
// statement store disabled (stmt::SetEnabled(false)), so the JSON
// carries twin series — "server_pipeline",
// "server_pipeline_trace_off", and "server_pipeline_statements_off" —
// whose throughput deltas isolate the end-to-end cost of observability
// as a whole and of statement aggregation alone (budget: <2% each).
//
//   bench_server [--json out.json]
//   LOTUSX_BENCH_SMOKE=1 bench_server     # tiny run for CI

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <deque>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/metrics.h"
#include "common/statement_store.h"
#include "common/timer.h"
#include "net/server.h"
#include "net/wire.h"

namespace lotusx::bench {
namespace {

/// One pipelined client connection driven by the bench's epoll loop.
struct ClientConn {
  int fd = -1;
  bool connected = false;
  bool failed = false;
  net::FrameParser parser;
  std::string outbox;
  size_t outbox_offset = 0;
  size_t next_command = 0;  // next script index to enqueue
  size_t frames_received = 0;
  /// One stopwatch per in-flight command, started when the command is
  /// queued for sending; responses arrive in request order, so the
  /// front stopwatch always matches the next frame.
  std::deque<Timer> inflight;
};

/// Raises RLIMIT_NOFILE enough for client + server ends of every
/// connection (best effort; prints a warning when the hard limit wins).
void RaiseFdLimit(size_t connections) {
  rlimit limit{};
  if (::getrlimit(RLIMIT_NOFILE, &limit) != 0) return;
  rlim_t want = static_cast<rlim_t>(4 * connections + 64);
  if (limit.rlim_cur >= want) return;
  rlimit raised = limit;
  raised.rlim_cur = std::min(want, limit.rlim_max);
  ::setrlimit(RLIMIT_NOFILE, &raised);
  if (raised.rlim_cur < want) {
    std::printf("warning: RLIMIT_NOFILE %llu < wanted %llu; "
                "reduce connection count if connects fail\n",
                static_cast<unsigned long long>(raised.rlim_cur),
                static_cast<unsigned long long>(want));
  }
}

std::vector<std::string> BuildScript(size_t commands) {
  std::vector<std::string> script = {
      "ADD 50 0 article",
      "ADD 10 130 author",
      "EDGE 1 2 /",
      "OUTPUT 2",
  };
  const std::vector<std::string> mix = {
      "QUERY", "TYPE 1 / a", "SHOW", "VALUE 2 ~ lu", "QUERY", "TYPEVAL 2 l",
  };
  while (script.size() < commands) {
    script.push_back(mix[script.size() % mix.size()]);
  }
  script.resize(commands);
  return script;
}

int ConnectNonBlocking(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0 &&
      errno != EINPROGRESS) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Queues up to `window` commands, writes what the socket accepts, and
/// returns the epoll events this connection still needs.
uint32_t PumpConn(ClientConn& conn, const std::vector<std::string>& script,
                  size_t window, std::vector<double>* samples) {
  while (conn.next_command < script.size() &&
         conn.inflight.size() < window) {
    conn.outbox += script[conn.next_command];
    conn.outbox += '\n';
    ++conn.next_command;
    conn.inflight.emplace_back();
  }
  while (conn.outbox_offset < conn.outbox.size()) {
    ssize_t n = ::send(conn.fd, conn.outbox.data() + conn.outbox_offset,
                       conn.outbox.size() - conn.outbox_offset, MSG_NOSIGNAL);
    if (n > 0) {
      conn.outbox_offset += static_cast<size_t>(n);
    } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    } else if (errno != EINTR) {
      conn.failed = true;
      return 0;
    }
  }
  if (conn.outbox_offset == conn.outbox.size()) {
    conn.outbox.clear();
    conn.outbox_offset = 0;
  }
  (void)samples;
  uint32_t events = EPOLLIN;
  if (!conn.outbox.empty()) events |= EPOLLOUT;
  return events;
}

/// One full serving run against a fresh server: connect, pipeline the
/// script over every connection, collect per-command latencies into
/// `*samples` (cleared first), and return the wall-clock seconds.
double RunOnce(const index::IndexedDocument& indexed, size_t connections,
               size_t commands_per_conn, size_t window,
               std::vector<double>* samples) {
  const size_t connect_batch = 256;
  samples->clear();
  samples->reserve(connections * commands_per_conn);

  net::ServerOptions options;
  options.host = "127.0.0.1";
  options.port = 0;
  options.backlog = 1024;
  options.max_connections = connections + 8;
  options.idle_timeout_ms = 0;  // the bench controls connection lifetime
  auto server = net::Server::Start(indexed, options);
  CHECK(server.ok()) << server.status().ToString();
  uint16_t port = (*server)->port();

  const std::vector<std::string> script = BuildScript(commands_per_conn);
  std::vector<ClientConn> conns(connections);

  int epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  CHECK(epoll_fd >= 0) << "epoll_create1 failed";

  Timer wall;
  size_t started = 0;
  size_t finished = 0;
  size_t failed = 0;
  size_t connecting = 0;
  std::array<epoll_event, 256> events;

  auto finish_conn = [&](size_t index) {
    ClientConn& conn = conns[index];
    ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, conn.fd, nullptr);
    ::close(conn.fd);
    conn.fd = -1;
    if (conn.failed) {
      ++failed;
    }
    ++finished;
  };

  while (finished < connections) {
    // Keep a bounded batch of connects in flight so 1k+ connections do
    // not slam the backlog all at once.
    while (started < connections && connecting < connect_batch) {
      ClientConn& conn = conns[started];
      conn.fd = ConnectNonBlocking(port);
      CHECK(conn.fd >= 0) << "connect failed: " << std::strerror(errno);
      epoll_event ev{};
      ev.events = EPOLLOUT;  // connect completion
      ev.data.u64 = started;
      CHECK(::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, conn.fd, &ev) == 0)
          << "epoll_ctl failed";
      ++started;
      ++connecting;
    }

    int n = ::epoll_wait(epoll_fd, events.data(),
                         static_cast<int>(events.size()), 1000);
    if (n < 0) {
      if (errno == EINTR) continue;
      CHECK(false) << "epoll_wait failed: " << std::strerror(errno);
    }
    for (int i = 0; i < n; ++i) {
      size_t index = static_cast<size_t>(events[i].data.u64);
      ClientConn& conn = conns[index];
      if (conn.fd < 0) continue;
      uint32_t ev = events[i].events;

      if (!conn.connected) {
        int error = 0;
        socklen_t len = sizeof(error);
        ::getsockopt(conn.fd, SOL_SOCKET, SO_ERROR, &error, &len);
        CHECK(error == 0) << "connect failed: " << std::strerror(error);
        conn.connected = true;
        --connecting;
      }
      if (ev & (EPOLLERR | EPOLLHUP)) {
        conn.failed = true;
        finish_conn(index);
        continue;
      }
      if (ev & EPOLLIN) {
        char buf[65536];
        for (;;) {
          ssize_t r = ::recv(conn.fd, buf, sizeof(buf), 0);
          if (r > 0) {
            std::vector<net::Frame> frames;
            Status parsed = conn.parser.Feed(
                std::string_view(buf, static_cast<size_t>(r)), &frames);
            if (!parsed.ok()) {
              conn.failed = true;
              break;
            }
            for (net::Frame& frame : frames) {
              CHECK(!conn.inflight.empty()) << "frame without a request";
              samples->push_back(conn.inflight.front().ElapsedMillis());
              conn.inflight.pop_front();
              ++conn.frames_received;
              if (!frame.ok && frame.payload.find("limit") !=
                                   std::string::npos) {
                conn.failed = true;
              }
            }
          } else if (r == 0) {
            conn.failed = conn.frames_received < script.size();
            break;
          } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
            break;
          } else if (errno != EINTR) {
            conn.failed = true;
            break;
          }
        }
      }
      if (conn.failed || conn.frames_received == script.size()) {
        finish_conn(index);
        continue;
      }
      uint32_t want = PumpConn(conn, script, window, samples);
      if (conn.failed) {
        finish_conn(index);
        continue;
      }
      epoll_event ev_mod{};
      ev_mod.events = want;
      ev_mod.data.u64 = index;
      ::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev_mod);
    }
  }
  double wall_s = wall.ElapsedSeconds();
  ::close(epoll_fd);

  (*server)->Stop();
  CHECK(failed == 0) << failed << " connections failed";
  return wall_s;
}

}  // namespace

int Run(int argc, char** argv) {
  const size_t connections = SmokeMode() ? 32 : 1024;
  const size_t commands_per_conn = SmokeMode() ? 12 : 120;
  const size_t window = 8;  // commands in flight per connection

  RaiseFdLimit(connections);

  std::printf("indexing corpus...\n");
  index::IndexedDocument indexed = MakeDblp(/*seed=*/42,
                                            /*approx_nodes=*/50'000);

  const std::string base_params =
      "connections=" + std::to_string(connections) +
      " commands_per_conn=" + std::to_string(commands_per_conn) +
      " window=" + std::to_string(window) +
      " workers=" + std::to_string(ThreadPool::DefaultThreadCount());

  Table table({"variant", "commands", "p50 ms", "p95 ms", "p99 ms",
               "mean ms", "cmd/s"});
  std::vector<double> samples;
  double qps_on = 0;
  double qps_off = 0;
  double qps_stmt_off = 0;

  struct Variant {
    const char* label;
    const char* series;
    bool metrics_enabled;
    bool statements_enabled;
    double* qps_out;
  };
  const Variant variants[] = {
      {"observability on", "server_pipeline", true, true, &qps_on},
      {"trace off", "server_pipeline_trace_off", false, false, &qps_off},
      {"statements off", "server_pipeline_statements_off", true, false,
       &qps_stmt_off},
  };
  // Best-of-N with interleaved trials: one trial's throughput swings
  // ±10% from scheduler and page-cache interference at 1024
  // connections, which would drown the <2% budget entirely.
  // Interleaving (on, off, on, off, ...) cancels slow machine drift
  // that running all of one twin first would fold into the comparison;
  // the fastest trial of each twin is the closest observable to the
  // machine's actual capacity for that variant.
  const int trials = SmokeMode() ? 1 : 3;
  const size_t num_variants = sizeof(variants) / sizeof(variants[0]);
  std::vector<double> best_wall(num_variants, 0);
  std::vector<std::vector<double>> best_samples(num_variants);
  for (int trial = 0; trial < trials; ++trial) {
    for (size_t v = 0; v < num_variants; ++v) {
      const Variant& variant = variants[v];
      std::printf("driving %zu connections x %zu pipelined commands "
                  "(window %zu, trial %d/%d, %s)...\n",
                  connections, commands_per_conn, window, trial + 1, trials,
                  variant.label);
      std::vector<double> trial_samples;
      metrics::SetEnabled(variant.metrics_enabled);
      stmt::SetEnabled(variant.statements_enabled);
      double trial_wall = RunOnce(indexed, connections, commands_per_conn,
                                  window, &trial_samples);
      metrics::SetEnabled(true);
      stmt::SetEnabled(true);
      std::printf("  wall time %.2fs, %.0f commands/s\n", trial_wall,
                  static_cast<double>(trial_samples.size()) / trial_wall);
      if (best_wall[v] == 0 || trial_wall < best_wall[v]) {
        best_wall[v] = trial_wall;
        best_samples[v] = std::move(trial_samples);
      }
    }
  }
  for (size_t v = 0; v < num_variants; ++v) {
    const Variant& variant = variants[v];
    const double wall_s = best_wall[v];
    samples = std::move(best_samples[v]);

    std::sort(samples.begin(), samples.end());
    auto pct = [&](double q) {
      size_t index = static_cast<size_t>(
          q * static_cast<double>(samples.size() - 1) + 0.5);
      return samples[index];
    };
    double qps = static_cast<double>(samples.size()) / wall_s;
    *variant.qps_out = qps;
    double mean = 0;
    for (double s : samples) mean += s;
    mean /= static_cast<double>(samples.size());

    BenchJson::Instance().Record(
        variant.series,
        base_params + " metrics=" + (variant.metrics_enabled ? "on" : "off") +
            " statements=" + (variant.statements_enabled ? "on" : "off"),
        samples);
    table.AddRow({variant.label, std::to_string(samples.size()),
                  Fmt(pct(0.50)), Fmt(pct(0.95)), Fmt(pct(0.99)), Fmt(mean),
                  Fmt(qps, 0)});
  }
  table.Print();

  // Throughput cost of the default observability stack (budget <2%).
  // Reported, not CHECKed: single-run noise on shared CI machines
  // exceeds the budget, so enforcement stays with humans reading the
  // trend, and the twin series in --json make that trivial.
  const double overhead_pct = (qps_off - qps_on) / qps_off * 100.0;
  std::printf("observability overhead: %.2f%% cmd/s "
              "(on %.0f vs off %.0f; budget <2%%)\n",
              overhead_pct, qps_on, qps_off);
  const double stmt_overhead_pct =
      (qps_stmt_off - qps_on) / qps_stmt_off * 100.0;
  std::printf("statement-store overhead: %.2f%% cmd/s "
              "(on %.0f vs statements-off %.0f; budget <2%%)\n",
              stmt_overhead_pct, qps_on, qps_stmt_off);

  return WriteJsonIfRequested(argc, argv);
}

}  // namespace lotusx::bench

int main(int argc, char** argv) { return lotusx::bench::Run(argc, argv); }
