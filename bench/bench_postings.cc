// Posting-storage microbenchmarks: block encode/decode throughput, the
// scalar-vs-SIMD delta-decode twins on identical inputs, skip-index
// SeekGE intersection against a linear merge, and compressed-vs-raw
// posting memory. Run with --json out.json to archive the numbers.

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/arena.h"
#include "common/coding.h"
#include "common/random.h"
#include "index/posting_blocks.h"
#include "index/posting_codec.h"

namespace lotusx::bench {
namespace {

// Strictly increasing keys with gaps uniform in [1, 2*avg_gap).
std::vector<uint32_t> MakeKeys(uint64_t seed, size_t count,
                               uint32_t avg_gap) {
  Random rng(seed);
  std::vector<uint32_t> keys;
  keys.reserve(count);
  uint32_t key = 0;
  for (size_t i = 0; i < count; ++i) {
    key += 1 + static_cast<uint32_t>(
                   rng.NextBounded(avg_gap > 1 ? 2 * avg_gap - 1 : 1));
    keys.push_back(key);
  }
  return keys;
}

std::string Params(size_t count, uint32_t avg_gap) {
  return "keys=" + std::to_string(count) + " gap=" + std::to_string(avg_gap);
}

double KeysPerSec(size_t count, double ms) {
  return ms > 0 ? static_cast<double>(count) / (ms * 1e-3) : 0;
}

// A hand-encoded delta stream per block, mirroring the key section of
// the on-disk format, so both decode kernels can be timed on identical
// bytes without reaching into PostingBlocks internals.
struct DeltaBlocks {
  std::string bytes;
  std::vector<std::pair<size_t, uint32_t>> sections;  // (offset, count)
};

DeltaBlocks EncodeDeltaBlocks(std::span<const uint32_t> keys) {
  DeltaBlocks out;
  Encoder encoder(&out.bytes);
  for (size_t start = 0; start < keys.size();
       start += index::PostingBlocks::kBlockEntries) {
    size_t count = std::min<size_t>(index::PostingBlocks::kBlockEntries,
                                    keys.size() - start);
    out.sections.emplace_back(out.bytes.size(), static_cast<uint32_t>(count));
    encoder.PutVarint32(keys[start]);
    for (size_t i = 1; i < count; ++i) {
      encoder.PutVarint32(keys[start + i] - keys[start + i - 1]);
    }
  }
  return out;
}

// Decodes every block with `fn`, accumulating a checksum so the work
// cannot be optimized away. CHECK-fails on any decode error.
uint64_t DecodeAll(const DeltaBlocks& blocks, index::codec::DeltaDecodeFn fn,
                   uint32_t* scratch) {
  const uint8_t* base = reinterpret_cast<const uint8_t*>(blocks.bytes.data());
  const uint8_t* end = base + blocks.bytes.size();
  uint64_t checksum = 0;
  for (const auto& [offset, count] : blocks.sections) {
    const uint8_t* next = fn(base + offset, end, count, scratch);
    CHECK(next != nullptr) << "kernel rejected a valid block";
    checksum += scratch[count - 1];
  }
  return checksum;
}

void BenchEncodeDecode(size_t count, uint32_t avg_gap) {
  const std::string params = Params(count, avg_gap);
  std::vector<uint32_t> keys = MakeKeys(/*seed=*/17, count, avg_gap);
  const int reps = SmokeMode() ? 1 : 9;

  index::PostingBlocks blocks;
  double encode_ms = MedianMillis("postings_encode", params, reps, [&] {
    blocks = index::PostingBlocks::FromSorted(keys);
  });

  // Full forward scan through a cursor: the fast-path decode kernel plus
  // cursor overhead, the shape every join consumes.
  Arena arena;
  uint64_t checksum = 0;
  double scan_ms = MedianMillis("postings_cursor_scan", params, reps, [&] {
    arena.Reset();
    checksum = 0;
    for (index::PostingBlocks::Cursor cursor = blocks.NewCursor(&arena);
         !cursor.AtEnd(); cursor.Next()) {
      checksum += cursor.Key();
    }
  });
  CHECK(checksum != 0);

  // Checked full decode (the validation/cold path).
  double checked_ms = MedianMillis("postings_decode_checked", params, reps,
                                   [&] { CHECK(!blocks.DecodeKeys().empty()); });

  // Memory vs a raw uint32 vector. The ratio rides in the params string
  // so the --json artifact carries the acceptance numbers directly.
  size_t raw_bytes = keys.size() * sizeof(uint32_t);
  size_t packed_bytes = blocks.MemoryUsage();
  double ratio = static_cast<double>(raw_bytes) /
                 static_cast<double>(packed_bytes);
  BenchJson::Instance().Record(
      "postings_memory",
      params + " raw_bytes=" + std::to_string(raw_bytes) +
          " compressed_bytes=" + std::to_string(packed_bytes) +
          " ratio=" + Fmt(ratio, 2),
      {ratio});

  std::printf(
      "%-28s encode %8.1f Mkeys/s  scan %8.1f Mkeys/s  checked %8.1f "
      "Mkeys/s  memory %zu -> %zu bytes (%.2fx)\n",
      params.c_str(), KeysPerSec(count, encode_ms) / 1e6,
      KeysPerSec(count, scan_ms) / 1e6, KeysPerSec(count, checked_ms) / 1e6,
      raw_bytes, packed_bytes, ratio);
}

void BenchKernelTwins(size_t count, uint32_t avg_gap) {
  const std::string params = Params(count, avg_gap);
  std::vector<uint32_t> keys = MakeKeys(/*seed=*/23, count, avg_gap);
  DeltaBlocks blocks = EncodeDeltaBlocks(keys);
  std::vector<uint32_t> scratch(index::PostingBlocks::kBlockEntries);
  const int reps = SmokeMode() ? 1 : 9;

  uint64_t scalar_sum = 0;
  double scalar_ms =
      MedianMillis("postings_kernel_scalar", params, reps, [&] {
        scalar_sum =
            DecodeAll(blocks, index::codec::DecodeDeltaKeysScalar,
                      scratch.data());
      });
  std::printf("%-28s scalar %8.1f Mkeys/s", params.c_str(),
              KeysPerSec(count, scalar_ms) / 1e6);

  index::codec::DeltaDecodeFn simd = index::codec::SimdDeltaDecoder();
  if (simd != nullptr) {
    uint64_t simd_sum = 0;
    double simd_ms = MedianMillis(
        std::string("postings_kernel_") +
            index::codec::ActiveDeltaDecoderName(),
        params, reps,
        [&] { simd_sum = DecodeAll(blocks, simd, scratch.data()); });
    CHECK(simd_sum == scalar_sum) << "kernels disagree";
    std::printf("  %s %8.1f Mkeys/s (%.2fx)",
                index::codec::ActiveDeltaDecoderName(),
                KeysPerSec(count, simd_ms) / 1e6, scalar_ms / simd_ms);
  } else {
    std::printf("  (SIMD disabled)");
  }
  std::printf("\n");
}

void BenchSeekVsLinear(size_t big_count, size_t probe_count) {
  const std::string params = "big=" + std::to_string(big_count) +
                             " probes=" + std::to_string(probe_count);
  std::vector<uint32_t> big_keys = MakeKeys(/*seed=*/29, big_count, 8);
  index::PostingBlocks big = index::PostingBlocks::FromSorted(big_keys);

  // Sorted probe keys, every one a member, spread across the whole list:
  // the descendant side of a selective structural join.
  std::vector<uint32_t> probes;
  probes.reserve(probe_count);
  size_t stride = big_count / probe_count;
  for (size_t i = 0; i < probe_count; ++i) {
    probes.push_back(big_keys[i * stride]);
  }

  Arena arena;
  const int reps = SmokeMode() ? 1 : 9;

  size_t hits = 0;
  double seek_ms = MedianMillis("postings_intersect_seek", params, reps, [&] {
    arena.Reset();
    hits = 0;
    index::PostingBlocks::Cursor cursor = big.NewCursor(&arena);
    for (uint32_t probe : probes) {
      if (!cursor.SeekGE(probe)) break;
      if (cursor.Key() == probe) ++hits;
    }
  });
  CHECK(hits == probes.size());

  double linear_ms =
      MedianMillis("postings_intersect_linear", params, reps, [&] {
        arena.Reset();
        hits = 0;
        size_t next = 0;
        for (index::PostingBlocks::Cursor cursor = big.NewCursor(&arena);
             !cursor.AtEnd() && next < probes.size(); cursor.Next()) {
          if (cursor.Key() == probes[next]) {
            ++hits;
            ++next;
          }
        }
      });
  CHECK(hits == probes.size());

  std::printf("%-28s seek %9.3f ms  linear %9.3f ms  speedup %.1fx\n",
              params.c_str(), seek_ms, linear_ms,
              seek_ms > 0 ? linear_ms / seek_ms : 0);
}

void Main() {
  std::printf("posting blocks: %u entries/block, active kernel %s\n\n",
              index::PostingBlocks::kBlockEntries,
              index::codec::ActiveDeltaDecoderName());

  std::printf("== encode / decode / memory ==\n");
  for (size_t count : Scales({100'000, 1'000'000}, 10'000)) {
    for (uint32_t gap : {1u, 4u, 64u}) {
      BenchEncodeDecode(count, gap);
    }
  }

  std::printf("\n== delta-decode kernel twins ==\n");
  for (size_t count : Scales({1'000'000}, 10'000)) {
    for (uint32_t gap : {1u, 4u, 64u}) {
      BenchKernelTwins(count, gap);
    }
  }

  std::printf("\n== skip-index SeekGE vs linear merge ==\n");
  for (size_t big : Scales({1'000'000}, 20'000)) {
    for (size_t probes : {100ul, 1'000ul, 10'000ul}) {
      BenchSeekVsLinear(big, probes);
    }
  }
}

}  // namespace
}  // namespace lotusx::bench

int main(int argc, char** argv) {
  lotusx::bench::Main();
  return lotusx::bench::WriteJsonIfRequested(argc, argv);
}
