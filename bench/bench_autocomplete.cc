// Experiment E1 — auto-completion latency ("providing the possible
// candidates on-the-fly"). Measures the per-keystroke cost of LotusX
// tag and value completion across document sizes and prefix lengths.
//
// Expected shape (DESIGN.md): latency stays deep in interactive range
// (well under a millisecond at ~1M nodes) and grows sub-linearly with
// document size, because completion works on summary structures (the
// DataGuide and tries), not on the document.

#include <cstdio>

#include "autocomplete/completion.h"
#include "bench/bench_util.h"
#include "datagen/datagen.h"
#include "index/indexed_document.h"
#include "twig/query_parser.h"

namespace lotusx {
namespace {

using autocomplete::CompletionEngine;
using autocomplete::TagRequest;
using bench::Fmt;
using bench::MedianMillis;
using bench::Table;

void RunForSize(int64_t nodes, Table* tag_table, Table* value_table) {
  index::IndexedDocument indexed = bench::MakeDblp(/*seed=*/1, nodes);
  CompletionEngine engine(indexed);
  twig::TwigQuery context = bench::MustParse("//article[year]");

  constexpr int kReps = 300;
  std::vector<std::string> row_tags = {std::to_string(nodes)};
  std::vector<std::string> row_values = {std::to_string(nodes)};
  // Tag completion at increasing prefix lengths (keystrokes of "author").
  for (size_t prefix_len : {0, 1, 2, 4}) {
    TagRequest request;
    request.anchor = 0;
    request.axis = twig::Axis::kChild;
    request.prefix = std::string("author").substr(0, prefix_len);
    double ms = MedianMillis(
        "complete_tag",
        "nodes=" + std::to_string(nodes) +
            " prefix_len=" + std::to_string(prefix_len),
        kReps, [&] {
          auto candidates = engine.CompleteTag(context, request);
          CHECK(candidates.ok());
        });
    row_tags.push_back(Fmt(ms * 1000.0, 1));
  }
  tag_table->AddRow(row_tags);

  // Value completion for //article/author while typing a name.
  twig::TwigQuery value_context = bench::MustParse("//article/author");
  for (size_t prefix_len : {0, 1, 2, 4}) {
    std::string prefix = std::string("abcd").substr(0, prefix_len);
    double ms = MedianMillis(
        "complete_value",
        "nodes=" + std::to_string(nodes) +
            " prefix_len=" + std::to_string(prefix_len),
        kReps, [&] {
          auto candidates = engine.CompleteValue(value_context, 1, prefix, 10,
                                                 /*position_aware=*/true);
          CHECK(candidates.ok());
        });
    row_values.push_back(Fmt(ms * 1000.0, 1));
  }
  value_table->AddRow(row_values);
  std::printf("  built %lld-node corpus: %d paths, %zu terms\n",
              static_cast<long long>(indexed.document().num_nodes()),
              indexed.dataguide().num_paths(), indexed.terms().num_terms());
}

}  // namespace
}  // namespace lotusx

int main(int argc, char** argv) {
  std::printf(
      "E1: auto-completion latency (microseconds per keystroke, median of "
      "300)\n\n");
  lotusx::bench::Table tag_table(
      {"doc nodes", "tag p=0", "tag p=1", "tag p=2", "tag p=4"});
  lotusx::bench::Table value_table(
      {"doc nodes", "val p=0", "val p=1", "val p=2", "val p=4"});
  for (int64_t nodes :
       lotusx::bench::Scales({10'000, 50'000, 200'000, 1'000'000})) {
    lotusx::RunForSize(nodes, &tag_table, &value_table);
  }
  std::printf("\nposition-aware TAG completion (us):\n");
  tag_table.Print();
  std::printf("\nposition-aware VALUE completion (us):\n");
  value_table.Print();
  std::printf(
      "\nexpected shape: sub-millisecond everywhere; growth with document\n"
      "size far below linear (completion reads summaries, not data).\n");
  return lotusx::bench::WriteJsonIfRequested(argc, argv);
}
