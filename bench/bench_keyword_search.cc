// Experiment E9 (extension) — schema-free keyword search (SLCA). Compares
// the indexed-lookup-eager algorithm (keyword/keyword_search.h) against a
// naive baseline that tests every element's subtree interval against the
// posting lists, across document sizes and keyword counts.
//
// Expected shape: the ILE algorithm's cost follows the *rarest* keyword's
// posting list (sub-millisecond even at ~1M nodes), while the baseline
// scales with document size; both return identical answer sets (checked).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "datagen/datagen.h"
#include "index/indexed_document.h"
#include "keyword/keyword_search.h"

namespace lotusx {
namespace {

using bench::Fmt;
using bench::MedianMillis;
using bench::Table;
using xml::NodeId;

/// Naive SLCA: for every element, test whether each keyword has a posting
/// inside the element's subtree interval (binary search per keyword),
/// then keep the minimal qualifying elements.
std::vector<NodeId> NaiveSlca(const index::IndexedDocument& indexed,
                              const std::vector<std::string>& tokens) {
  const xml::Document& document = indexed.document();
  std::vector<std::vector<NodeId>> lists;
  for (const std::string& token : tokens) {
    lists.push_back(indexed.terms().DecodePostings(token));
    if (lists.back().empty()) return {};
  }
  std::vector<NodeId> qualifying;
  for (NodeId e = 0; e < document.num_nodes(); ++e) {
    if (document.node(e).kind == xml::NodeKind::kText) continue;
    NodeId end = document.node(e).subtree_end;
    bool all = true;
    for (const auto& list : lists) {
      auto it = std::lower_bound(list.begin(), list.end(), e);
      if (it == list.end() || *it > end) {
        all = false;
        break;
      }
    }
    if (all) qualifying.push_back(e);
  }
  // Minimal elements only: with preorder ids, e is non-minimal iff the
  // next qualifying id lies inside e's subtree.
  std::vector<NodeId> smallest;
  for (size_t i = 0; i < qualifying.size(); ++i) {
    if (i + 1 < qualifying.size() &&
        document.IsAncestor(qualifying[i], qualifying[i + 1])) {
      continue;
    }
    smallest.push_back(qualifying[i]);
  }
  return smallest;
}

/// Picks `k` keywords from the document vocabulary: one frequent anchor
/// plus progressively rarer terms, so the query is selective but
/// satisfiable.
std::vector<std::string> PickKeywords(const index::IndexedDocument& indexed,
                                      int k) {
  std::vector<index::Completion> frequent =
      indexed.terms().term_trie().Complete("", 50);
  std::vector<std::string> tokens;
  for (int i = 0; i < k && i * 7 < static_cast<int>(frequent.size()); ++i) {
    tokens.push_back(frequent[static_cast<size_t>(i) * 7].key);
  }
  return tokens;
}

}  // namespace
}  // namespace lotusx

int main(int argc, char** argv) {
  std::printf(
      "E9 (extension): SLCA keyword search — indexed (ILE) vs naive "
      "subtree scan\n\n");
  lotusx::bench::Table table({"doc nodes", "keywords", "answers", "ILE ms",
                              "naive ms", "speedup"});
  for (int64_t nodes : lotusx::bench::Scales({20'000, 100'000, 500'000})) {
    lotusx::index::IndexedDocument indexed = lotusx::bench::MakeDblp(17, nodes);
    for (int k : {1, 2, 3}) {
      std::vector<std::string> tokens =
          lotusx::PickKeywords(indexed, k);
      std::string joined = lotusx::Join(tokens, " ");

      lotusx::keyword::KeywordSearchOptions options;
      options.limit = 1'000'000;
      std::vector<lotusx::xml::NodeId> ile_nodes;
      double ile_ms = lotusx::bench::MedianMillis(
          "slca_ile", "keywords=" + joined, 5, [&] {
            auto hits = lotusx::keyword::SlcaSearch(indexed, joined, options);
            CHECK(hits.ok());
            ile_nodes.clear();
            for (const auto& hit : *hits) ile_nodes.push_back(hit.node);
          });
      std::vector<lotusx::xml::NodeId> naive_nodes;
      double naive_ms = lotusx::bench::MedianMillis(
          "slca_naive", "keywords=" + joined, 3,
          [&] { naive_nodes = lotusx::NaiveSlca(indexed, tokens); });
      // Same answers (modulo ranking order).
      std::sort(ile_nodes.begin(), ile_nodes.end());
      CHECK(ile_nodes == naive_nodes)
          << "SLCA mismatch on '" << joined << "': " << ile_nodes.size()
          << " vs " << naive_nodes.size();

      table.AddRow({std::to_string(indexed.document().num_nodes()),
                    joined, std::to_string(ile_nodes.size()),
                    lotusx::bench::Fmt(ile_ms, 2),
                    lotusx::bench::Fmt(naive_ms, 2),
                    lotusx::bench::Fmt(naive_ms / std::max(ile_ms, 1e-3), 1)});
    }
  }
  table.Print();
  std::printf(
      "\nexpected shape: naive cost grows linearly with document size;\n"
      "ILE follows the rarest keyword's postings and stays interactive.\n");
  return lotusx::bench::WriteJsonIfRequested(argc, argv);
}
