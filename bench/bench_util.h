#ifndef LOTUSX_BENCH_BENCH_UTIL_H_
#define LOTUSX_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <numeric>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "bench/alloc_tracker.h"
#include "common/logging.h"
#include "common/sync.h"
#include "common/timer.h"
#include "datagen/datagen.h"
#include "index/indexed_document.h"
#include "twig/evaluator.h"
#include "twig/query_parser.h"

namespace lotusx::bench {

/// True when LOTUSX_BENCH_SMOKE is set: CI's bench smoke job runs every
/// binary on one tiny document with one repetition, proving the bench
/// still builds and executes end to end — the numbers are meaningless.
inline bool SmokeMode() {
  static const bool smoke = std::getenv("LOTUSX_BENCH_SMOKE") != nullptr;
  return smoke;
}

/// `full` approximate nodes normally, a tiny document in smoke mode.
inline int64_t ScaledNodes(int64_t full, int64_t smoke = 2'000) {
  return SmokeMode() ? smoke : full;
}

/// The document sizes a bench sweeps: the full ladder normally, one tiny
/// size in smoke mode.
inline std::vector<int64_t> Scales(std::vector<int64_t> full,
                                   int64_t smoke = 2'000) {
  if (SmokeMode()) return {smoke};
  return full;
}

/// Per-operation heap profile of a timed region: the alloc-tracker
/// counter deltas across all timed repetitions, divided by repetitions.
struct AllocPerOp {
  double allocs = 0;
  double bytes = 0;
};

/// Sorted wall-clock samples (milliseconds) of `fn` over `repetitions`
/// runs, after one warm-up run. Smoke mode clamps to a single run so
/// every call site speeds up without edits. When `alloc` is non-null it
/// receives the per-repetition heap allocation profile of the timed
/// runs (warm-up excluded).
inline std::vector<double> SampleMillis(int repetitions,
                                        const std::function<void()>& fn,
                                        AllocPerOp* alloc = nullptr) {
  if (SmokeMode()) repetitions = 1;
  fn();  // warm-up
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(repetitions));
  AllocCounters before = CurrentAllocCounters();
  for (int i = 0; i < repetitions; ++i) {
    Timer timer;
    fn();
    samples.push_back(timer.ElapsedMillis());
  }
  if (alloc != nullptr) {
    AllocCounters after = CurrentAllocCounters();
    // push_back above allocates too, but samples was reserved up front,
    // so the delta is the workload's own heap traffic.
    alloc->allocs = static_cast<double>(after.allocs - before.allocs) /
                    static_cast<double>(repetitions);
    alloc->bytes = static_cast<double>(after.bytes - before.bytes) /
                   static_cast<double>(repetitions);
  }
  std::sort(samples.begin(), samples.end());
  return samples;
}

/// One measurement destined for the machine-readable --json report.
struct BenchRecord {
  std::string name;    // measurement family, e.g. "evaluate"
  std::string params;  // free-form key=value parameters
  int reps = 0;
  double p50_ns = 0;
  double p95_ns = 0;
  double p99_ns = 0;
  double mean_ns = 0;
  double bytes_per_op = 0;
  double allocs_per_op = 0;
};

/// Process-wide collector behind the `--json out.json` bench mode: every
/// named measurement (the MedianMillis overload below, TimedEvaluate)
/// appends a record; WriteJsonIfRequested dumps them as a JSON array so
/// CI can archive bench numbers as artifacts.
class BenchJson {
 public:
  static BenchJson& Instance() {
    static BenchJson instance;
    return instance;
  }

  /// Records one measurement from its sorted millisecond samples.
  void Record(std::string_view name, std::string_view params,
              const std::vector<double>& sorted_samples_ms,
              const AllocPerOp& alloc = {}) {
    if (sorted_samples_ms.empty()) return;
    BenchRecord record;
    record.name = std::string(name);
    record.params = std::string(params);
    record.reps = static_cast<int>(sorted_samples_ms.size());
    auto percentile = [&](double q) {
      size_t index = static_cast<size_t>(
          q * static_cast<double>(sorted_samples_ms.size() - 1) + 0.5);
      return sorted_samples_ms[index] * 1e6;  // ms -> ns
    };
    record.p50_ns = percentile(0.50);
    record.p95_ns = percentile(0.95);
    record.p99_ns = percentile(0.99);
    record.mean_ns = std::accumulate(sorted_samples_ms.begin(),
                                     sorted_samples_ms.end(), 0.0) /
                     static_cast<double>(sorted_samples_ms.size()) * 1e6;
    record.bytes_per_op = alloc.bytes;
    record.allocs_per_op = alloc.allocs;
    MutexLock lock(mu_);
    records_.push_back(std::move(record));
  }

  /// Writes the accumulated records to `path` as a JSON array.
  bool WriteTo(const std::string& path) const {
    std::FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
      return false;
    }
    MutexLock lock(mu_);
    std::fputs("[\n", file);
    for (size_t i = 0; i < records_.size(); ++i) {
      const BenchRecord& r = records_[i];
      std::fprintf(file,
                   "  {\"name\": \"%s\", \"params\": \"%s\", \"reps\": %d, "
                   "\"p50_ns\": %.1f, \"p95_ns\": %.1f, \"p99_ns\": %.1f, "
                   "\"mean_ns\": %.1f, \"bytes_per_op\": %.1f, "
                   "\"allocs_per_op\": %.1f}%s\n",
                   Escape(r.name).c_str(), Escape(r.params).c_str(), r.reps,
                   r.p50_ns, r.p95_ns, r.p99_ns, r.mean_ns, r.bytes_per_op,
                   r.allocs_per_op, i + 1 < records_.size() ? "," : "");
    }
    std::fputs("]\n", file);
    std::fclose(file);
    return true;
  }

  size_t size() const {
    MutexLock lock(mu_);
    return records_.size();
  }

 private:
  static std::string Escape(std::string_view text) {
    std::string escaped;
    escaped.reserve(text.size());
    for (char c : text) {
      switch (c) {
        case '"':
          escaped += "\\\"";
          break;
        case '\\':
          escaped += "\\\\";
          break;
        case '\n':
          escaped += "\\n";
          break;
        case '\t':
          escaped += "\\t";
          break;
        default:
          escaped += c;
      }
    }
    return escaped;
  }

  mutable Mutex mu_;
  std::vector<BenchRecord> records_ LOTUSX_GUARDED_BY(mu_);
};

/// Call at the end of main: when the binary was invoked with
/// `--json out.json` (or `--json=out.json`), dumps every recorded
/// measurement to that file. Returns main's exit code.
inline int WriteJsonIfRequested(int argc, char** argv) {
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      path = argv[++i];
    } else if (arg.substr(0, 7) == "--json=") {
      path = argv[i] + 7;
    }
  }
  if (path == nullptr) return 0;
  if (!BenchJson::Instance().WriteTo(path)) return 1;
  std::printf("wrote %s (%zu records)\n", path,
              BenchJson::Instance().size());
  return 0;
}

/// Median wall-clock milliseconds of `fn` over `repetitions` runs (after
/// one warm-up run); see SampleMillis for smoke-mode behavior.
inline double MedianMillis(int repetitions, const std::function<void()>& fn) {
  std::vector<double> samples = SampleMillis(repetitions, fn);
  return samples[samples.size() / 2];
}

/// Same, additionally recording (name, params, reps, p50/p95/mean ns,
/// bytes/allocs per op) into the --json report.
inline double MedianMillis(std::string_view name, std::string_view params,
                           int repetitions, const std::function<void()>& fn) {
  AllocPerOp alloc;
  std::vector<double> samples = SampleMillis(repetitions, fn, &alloc);
  BenchJson::Instance().Record(name, params, samples, alloc);
  return samples[samples.size() / 2];
}

/// Parses an optional `--scale N` / `--scale=N` argument: a corpus size
/// multiplier benches apply to their base rung instead of sweeping the
/// built-in ladder. Returns 0 when absent.
inline int64_t ScaleFromArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    const char* value = nullptr;
    if (arg == "--scale" && i + 1 < argc) {
      value = argv[i + 1];
    } else if (arg.substr(0, 8) == "--scale=") {
      value = argv[i] + 8;
    }
    if (value != nullptr) {
      int64_t scale = std::atoll(value);
      CHECK(scale > 0) << "--scale wants a positive integer, got '" << value
                       << "'";
      return scale;
    }
  }
  return 0;
}

/// Parses a hard-coded bench workload, aborting on a syntax error.
inline twig::TwigQuery MustParse(std::string_view text) {
  StatusOr<twig::TwigQuery> query = twig::ParseQuery(text);
  CHECK(query.ok()) << "bad bench query '" << text
                    << "': " << query.status().message();
  return *std::move(query);
}

/// EvalOptions pinned to one algorithm — the per-algorithm bench rows.
inline twig::EvalOptions EvalWith(twig::Algorithm algorithm,
                                  bool reorder_binary_joins = false) {
  twig::EvalOptions options;
  options.algorithm = algorithm;
  options.reorder_binary_joins = reorder_binary_joins;
  return options;
}

/// EvalOptions for the E4 order-sensitive ablation: `apply_order` off
/// prices the query as if unordered; with it on, `integrate_order` picks
/// integrated pruning versus post-filtering complete matches.
inline twig::EvalOptions OrderEval(bool apply_order, bool integrate_order) {
  twig::EvalOptions options;
  options.apply_order = apply_order;
  options.integrate_order = integrate_order;
  return options;
}

/// EvalOptions for the E10 schema-pruning ablation.
inline twig::EvalOptions PruneEval(bool schema_prune_streams) {
  twig::EvalOptions options;
  options.schema_prune_streams = schema_prune_streams;
  return options;
}

/// One timed evaluation: median milliseconds plus the last run's result.
struct TimedEval {
  double ms = 0;
  twig::QueryResult result;
};

/// Median-of-`repetitions` twig evaluation (one run in smoke mode); the
/// query must succeed. Deduplicates the Evaluate+CHECK+stats pattern the
/// experiment benches all share, and records an "evaluate" row (query +
/// algorithm parameters) into the --json report.
inline TimedEval TimedEvaluate(const index::IndexedDocument& indexed,
                               const twig::TwigQuery& query,
                               const twig::EvalOptions& options = {},
                               int repetitions = 5) {
  TimedEval timed;
  std::string params = "query=" + query.ToString() + " algorithm=" +
                       std::string(twig::AlgorithmName(options.algorithm));
  timed.ms = MedianMillis("evaluate", params, repetitions, [&] {
    StatusOr<twig::QueryResult> result =
        twig::Evaluate(indexed, query, options);
    CHECK(result.ok()) << "bench query failed: " << result.status().message();
    timed.result = *std::move(result);
  });
  return timed;
}

/// Generated corpora wrapped into an index in one call; the approximate
/// node count respects ScaledNodes, so pass the full-size target and the
/// smoke job automatically shrinks it.
inline index::IndexedDocument MakeDblp(uint64_t seed, int64_t approx_nodes) {
  return index::IndexedDocument(
      datagen::GenerateDblpWithApproxNodes(seed, ScaledNodes(approx_nodes)));
}
inline index::IndexedDocument MakeStore(uint64_t seed, int64_t approx_nodes) {
  return index::IndexedDocument(
      datagen::GenerateStoreWithApproxNodes(seed, ScaledNodes(approx_nodes)));
}
inline index::IndexedDocument MakeXmark(uint64_t seed, int64_t approx_nodes) {
  return index::IndexedDocument(
      datagen::GenerateXmarkWithApproxNodes(seed, ScaledNodes(approx_nodes)));
}
inline index::IndexedDocument MakeTreebank(uint64_t seed,
                                           int64_t approx_nodes) {
  return index::IndexedDocument(datagen::GenerateTreebankWithApproxNodes(
      seed, ScaledNodes(approx_nodes)));
}

/// Fixed-width table printer for the experiment reports.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf("|");
      for (size_t c = 0; c < widths.size(); ++c) {
        std::printf(" %-*s |", static_cast<int>(widths[c]),
                    c < row.size() ? row[c].c_str() : "");
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (size_t c = 0; c < widths.size(); ++c) {
      std::printf("%s|", std::string(widths[c] + 2, '-').c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(double value, int decimals = 3) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

}  // namespace lotusx::bench

#endif  // LOTUSX_BENCH_BENCH_UTIL_H_
