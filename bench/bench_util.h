#ifndef LOTUSX_BENCH_BENCH_UTIL_H_
#define LOTUSX_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/timer.h"
#include "datagen/datagen.h"
#include "index/indexed_document.h"
#include "twig/evaluator.h"
#include "twig/query_parser.h"

namespace lotusx::bench {

/// True when LOTUSX_BENCH_SMOKE is set: CI's bench smoke job runs every
/// binary on one tiny document with one repetition, proving the bench
/// still builds and executes end to end — the numbers are meaningless.
inline bool SmokeMode() {
  static const bool smoke = std::getenv("LOTUSX_BENCH_SMOKE") != nullptr;
  return smoke;
}

/// `full` approximate nodes normally, a tiny document in smoke mode.
inline int64_t ScaledNodes(int64_t full, int64_t smoke = 2'000) {
  return SmokeMode() ? smoke : full;
}

/// The document sizes a bench sweeps: the full ladder normally, one tiny
/// size in smoke mode.
inline std::vector<int64_t> Scales(std::vector<int64_t> full,
                                   int64_t smoke = 2'000) {
  if (SmokeMode()) return {smoke};
  return full;
}

/// Median wall-clock milliseconds of `fn` over `repetitions` runs (after
/// one warm-up run). Smoke mode clamps to a single run so every call
/// site speeds up without edits.
inline double MedianMillis(int repetitions, const std::function<void()>& fn) {
  if (SmokeMode()) repetitions = 1;
  fn();  // warm-up
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(repetitions));
  for (int i = 0; i < repetitions; ++i) {
    Timer timer;
    fn();
    samples.push_back(timer.ElapsedMillis());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Parses a hard-coded bench workload, aborting on a syntax error.
inline twig::TwigQuery MustParse(std::string_view text) {
  StatusOr<twig::TwigQuery> query = twig::ParseQuery(text);
  CHECK(query.ok()) << "bad bench query '" << text
                    << "': " << query.status().message();
  return *std::move(query);
}

/// EvalOptions pinned to one algorithm — the per-algorithm bench rows.
inline twig::EvalOptions EvalWith(twig::Algorithm algorithm,
                                  bool reorder_binary_joins = false) {
  twig::EvalOptions options;
  options.algorithm = algorithm;
  options.reorder_binary_joins = reorder_binary_joins;
  return options;
}

/// EvalOptions for the E4 order-sensitive ablation: `apply_order` off
/// prices the query as if unordered; with it on, `integrate_order` picks
/// integrated pruning versus post-filtering complete matches.
inline twig::EvalOptions OrderEval(bool apply_order, bool integrate_order) {
  twig::EvalOptions options;
  options.apply_order = apply_order;
  options.integrate_order = integrate_order;
  return options;
}

/// EvalOptions for the E10 schema-pruning ablation.
inline twig::EvalOptions PruneEval(bool schema_prune_streams) {
  twig::EvalOptions options;
  options.schema_prune_streams = schema_prune_streams;
  return options;
}

/// One timed evaluation: median milliseconds plus the last run's result.
struct TimedEval {
  double ms = 0;
  twig::QueryResult result;
};

/// Median-of-`repetitions` twig evaluation (one run in smoke mode); the
/// query must succeed. Deduplicates the Evaluate+CHECK+stats pattern the
/// experiment benches all share.
inline TimedEval TimedEvaluate(const index::IndexedDocument& indexed,
                               const twig::TwigQuery& query,
                               const twig::EvalOptions& options = {},
                               int repetitions = 5) {
  TimedEval timed;
  timed.ms = MedianMillis(repetitions, [&] {
    StatusOr<twig::QueryResult> result =
        twig::Evaluate(indexed, query, options);
    CHECK(result.ok()) << "bench query failed: " << result.status().message();
    timed.result = *std::move(result);
  });
  return timed;
}

/// Generated corpora wrapped into an index in one call; the approximate
/// node count respects ScaledNodes, so pass the full-size target and the
/// smoke job automatically shrinks it.
inline index::IndexedDocument MakeDblp(uint64_t seed, int64_t approx_nodes) {
  return index::IndexedDocument(
      datagen::GenerateDblpWithApproxNodes(seed, ScaledNodes(approx_nodes)));
}
inline index::IndexedDocument MakeStore(uint64_t seed, int64_t approx_nodes) {
  return index::IndexedDocument(
      datagen::GenerateStoreWithApproxNodes(seed, ScaledNodes(approx_nodes)));
}
inline index::IndexedDocument MakeXmark(uint64_t seed, int64_t approx_nodes) {
  return index::IndexedDocument(
      datagen::GenerateXmarkWithApproxNodes(seed, ScaledNodes(approx_nodes)));
}
inline index::IndexedDocument MakeTreebank(uint64_t seed,
                                           int64_t approx_nodes) {
  return index::IndexedDocument(datagen::GenerateTreebankWithApproxNodes(
      seed, ScaledNodes(approx_nodes)));
}

/// Fixed-width table printer for the experiment reports.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf("|");
      for (size_t c = 0; c < widths.size(); ++c) {
        std::printf(" %-*s |", static_cast<int>(widths[c]),
                    c < row.size() ? row[c].c_str() : "");
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (size_t c = 0; c < widths.size(); ++c) {
      std::printf("%s|", std::string(widths[c] + 2, '-').c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(double value, int decimals = 3) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

}  // namespace lotusx::bench

#endif  // LOTUSX_BENCH_BENCH_UTIL_H_
