#ifndef LOTUSX_BENCH_BENCH_UTIL_H_
#define LOTUSX_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/timer.h"

namespace lotusx::bench {

/// Median wall-clock milliseconds of `fn` over `repetitions` runs (after
/// one warm-up run).
inline double MedianMillis(int repetitions, const std::function<void()>& fn) {
  fn();  // warm-up
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(repetitions));
  for (int i = 0; i < repetitions; ++i) {
    Timer timer;
    fn();
    samples.push_back(timer.ElapsedMillis());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Fixed-width table printer for the experiment reports.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf("|");
      for (size_t c = 0; c < widths.size(); ++c) {
        std::printf(" %-*s |", static_cast<int>(widths[c]),
                    c < row.size() ? row[c].c_str() : "");
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (size_t c = 0; c < widths.size(); ++c) {
      std::printf("%s|", std::string(widths[c] + 2, '-').c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(double value, int decimals = 3) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

}  // namespace lotusx::bench

#endif  // LOTUSX_BENCH_BENCH_UTIL_H_
