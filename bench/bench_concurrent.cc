// Experiment E11 — concurrent serving throughput. One immutable Engine
// shared by T threads; every thread hammers the same query mix. Measures
// QPS and cache hit rate vs thread count for
//   (a) the cached-query workload (sharded result cache enabled, hot) —
//       the acceptance workload: QPS should scale well past 2x at 4
//       threads on multi-core hardware, since hits copy a result under
//       one shard lock and never touch the evaluator;
//   (b) the cold workload (cache disabled) — pure evaluator scaling over
//       the immutable index;
//   (c) SearchBatch over a ThreadPool vs pool size — the serving-layer
//       entry point, including per-chunk EvalStats aggregation.
//
// Expected shape: near-linear scaling up to the physical core count for
// both (a) and (b) because the read path is shared-nothing over an
// immutable index; (a) saturates memory bandwidth first. On a single
// hardware thread all rows converge to ~1x.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "datagen/datagen.h"
#include "lotusx/engine.h"
#include "xml/writer.h"

namespace lotusx {
namespace {

using bench::Fmt;
using bench::Table;

const std::vector<std::string>& QueryMix() {
  static const std::vector<std::string> kQueries = {
      "//article/author",
      "//article/title",
      "//article[year]/author",
      "//inproceedings/title",
      "//article[author]/year",
  };
  return kQueries;
}

/// Serving-shaped options: clients page through the top answers, so a
/// cache hit copies a top-10 result, not the full match set.
SearchOptions ServingOptions() {
  SearchOptions options;
  options.ranking.top_k = 10;
  return options;
}

/// Runs `ops_per_thread` Search calls on each of `num_threads` threads
/// over one shared engine; returns wall seconds for the whole fan-out.
double RunSharedSearch(const Engine& engine, size_t num_threads,
                       size_t ops_per_thread) {
  const std::vector<std::string>& queries = QueryMix();
  const SearchOptions options = ServingOptions();
  Timer timer;
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) {
    threads.emplace_back([&engine, &queries, &options, ops_per_thread] {
      for (size_t i = 0; i < ops_per_thread; ++i) {
        auto result = engine.Search(queries[i % queries.size()], options);
        CHECK(result.ok());
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  return timer.ElapsedSeconds();
}

void RunSharedEngineSweep(const Engine& engine, bool cached,
                          size_t ops_per_thread) {
  std::printf("\n## Shared-engine Search QPS vs threads (%s)\n\n",
              cached ? "cached-query workload" : "cache disabled");
  Table table({"threads", "total ops", "seconds", "QPS", "speedup",
               "hit rate"});
  double baseline_qps = 0;
  for (size_t threads : {1, 2, 4, 8}) {
    const uint64_t hits_before = engine.cache_hits();
    const uint64_t misses_before = engine.cache_misses();
    const double seconds = RunSharedSearch(engine, threads, ops_per_thread);
    const double total_ops =
        static_cast<double>(threads) * static_cast<double>(ops_per_thread);
    const double qps = total_ops / seconds;
    if (threads == 1) baseline_qps = qps;
    const uint64_t hits = engine.cache_hits() - hits_before;
    const uint64_t misses = engine.cache_misses() - misses_before;
    const double hit_rate =
        hits + misses == 0
            ? 0
            : static_cast<double>(hits) / static_cast<double>(hits + misses);
    table.AddRow({std::to_string(threads),
                  std::to_string(static_cast<uint64_t>(total_ops)),
                  Fmt(seconds), Fmt(qps, 0),
                  Fmt(qps / baseline_qps, 2) + "x", Fmt(hit_rate, 3)});
  }
  table.Print();
}

void RunBatchSweep(const Engine& engine, size_t batch_size, int batches) {
  std::printf("\n## SearchBatch QPS vs ThreadPool size (cached)\n\n");
  std::vector<std::string> batch;
  batch.reserve(batch_size);
  const std::vector<std::string>& queries = QueryMix();
  for (size_t i = 0; i < batch_size; ++i) {
    batch.push_back(queries[i % queries.size()]);
  }
  Table table({"pool threads", "batch", "seconds/batch", "QPS", "speedup"});
  double baseline_qps = 0;
  for (size_t threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    double seconds =
        bench::MedianMillis("search_batch",
                            "threads=" + std::to_string(threads) +
                                " batch=" + std::to_string(batch_size),
                            batches,
                            [&] {
                              auto results = engine.SearchBatch(
                                  batch, ServingOptions(), &pool);
                              CHECK(results.size() == batch.size());
                            }) /
        1000.0;
    const double qps = static_cast<double>(batch_size) / seconds;
    if (threads == 1) baseline_qps = qps;
    table.AddRow({std::to_string(threads), std::to_string(batch_size),
                  Fmt(seconds), Fmt(qps, 0),
                  Fmt(qps / baseline_qps, 2) + "x"});
  }
  table.Print();
}

void Run() {
  std::printf("# E11: concurrent serving throughput\n");
  std::printf("hardware threads: %zu\n", ThreadPool::DefaultThreadCount());
  std::printf("\n(building engine...)\n");
  // The facade only builds from XML text, so serialize the generated
  // document once through the library's own writer.
  xml::Document document = datagen::GenerateDblpWithApproxNodes(
      /*seed=*/7, bench::ScaledNodes(200'000));
  std::string xml = xml::WriteXml(document, document.root(), {});
  Engine engine = Engine::FromXmlText(xml).value();

  const bool smoke = bench::SmokeMode();
  // Cold: no cache, every op runs the evaluator.
  RunSharedEngineSweep(engine, /*cached=*/false,
                       /*ops_per_thread=*/smoke ? 20 : 500);
  // Hot: sharded cache, warmed before the sweep so every row measures
  // pure hit throughput (hits are ~1000x cheaper than evaluation, so a
  // handful of warm-up misses would otherwise dominate the fast rows).
  engine.EnableResultCache(64);
  for (const std::string& query : QueryMix()) {
    CHECK(engine.Search(query, ServingOptions()).ok());
  }
  RunSharedEngineSweep(engine, /*cached=*/true,
                       /*ops_per_thread=*/smoke ? 200 : 50000);
  RunBatchSweep(engine, /*batch_size=*/smoke ? 64 : 512, /*batches=*/5);
}

}  // namespace
}  // namespace lotusx

int main(int argc, char** argv) {
  lotusx::Run();
  return lotusx::bench::WriteJsonIfRequested(argc, argv);
}
