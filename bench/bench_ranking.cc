// Experiment E5 — quality of the ranking strategy. Synthetic corpora with
// planted ground truth: a small set of "target" publications is
// constructed to be what the user is actually looking for, surrounded by
// distractors that also match the query. Rankers compete on
// precision@k and MRR against that ground truth.
//
// Scenario A (content): targets mention the query keyword heavily and
// exclusively in the title; distractors mention it once among noise.
// Scenario B (structure): the user asks //conference//title; targets are
// the conference's own titles (tight, parent-child), distractors are
// titles of nested workshop sub-trees (sprawling matches).
//
// Expected shape: the full LotusX ranking clearly beats document order
// and random; the ablations show each signal carries its scenario.

#include <cstdio>
#include <set>

#include "bench/bench_util.h"
#include "common/random.h"
#include "index/indexed_document.h"
#include "ranking/ranker.h"
#include "twig/evaluator.h"
#include "twig/query_parser.h"

namespace lotusx {
namespace {

using bench::Fmt;
using bench::Table;

struct Scenario {
  index::IndexedDocument indexed;
  twig::TwigQuery query;
  std::vector<xml::NodeId> relevant;  // ground-truth output nodes
};

/// Scenario A: keyword relevance. 10 planted targets with tf=4 of the
/// keyword in short titles; 300 distractors with tf=1 in long noisy
/// titles (they all match ~"lotus").
Scenario BuildContentScenario(uint64_t seed) {
  Random random(seed);
  xml::Document doc;
  xml::NodeId root = doc.AppendElement(xml::kInvalidNodeId, "dblp");
  std::vector<int> kinds;  // 1 = target, 0 = distractor
  for (int i = 0; i < 10; ++i) kinds.push_back(1);
  for (int i = 0; i < 300; ++i) kinds.push_back(0);
  random.Shuffle(kinds);
  std::vector<xml::NodeId> relevant;
  for (int kind : kinds) {
    xml::NodeId article = doc.AppendElement(root, "article");
    xml::NodeId title = doc.AppendElement(article, "title");
    if (kind == 1) {
      doc.AppendText(title, "lotus lotus lotus lotus survey");
      relevant.push_back(title);
    } else {
      std::string text = "lotus";
      for (int w = 0; w < 12; ++w) text += " " + random.NextWord(4, 8);
      doc.AppendText(title, text);
    }
    xml::NodeId year = doc.AppendElement(article, "year");
    doc.AppendText(year, std::to_string(random.NextInRange(1990, 2012)));
  }
  doc.Finalize();
  Scenario scenario{index::IndexedDocument(std::move(doc)),
                    twig::ParseQuery(R"(//article/title[~"lotus"])").value(),
                    std::move(relevant)};
  return scenario;
}

/// Scenario B: structural tightness. //conference//title; the user wants
/// the conference's own titles (direct children), not the titles buried
/// in nested workshop subtrees.
Scenario BuildStructureScenario(uint64_t seed) {
  Random random(seed);
  xml::Document doc;
  xml::NodeId root = doc.AppendElement(xml::kInvalidNodeId, "proceedings");
  std::vector<xml::NodeId> relevant;
  for (int i = 0; i < 40; ++i) {
    xml::NodeId conference = doc.AppendElement(root, "conference");
    xml::NodeId title = doc.AppendElement(conference, "title");
    doc.AppendText(title, "conf " + random.NextWord(4, 8));
    relevant.push_back(title);
    // A big nested workshop blob with many distant titles.
    xml::NodeId sessions = doc.AppendElement(conference, "sessions");
    for (int w = 0; w < 6; ++w) {
      xml::NodeId workshop = doc.AppendElement(sessions, "workshop");
      xml::NodeId wt = doc.AppendElement(workshop, "title");
      doc.AppendText(wt, "ws " + random.NextWord(4, 8));
      for (int p = 0; p < 4; ++p) {
        xml::NodeId paper = doc.AppendElement(workshop, "paper");
        xml::NodeId pt = doc.AppendElement(paper, "title");
        doc.AppendText(pt, "paper " + random.NextWord(4, 8));
      }
    }
  }
  doc.Finalize();
  Scenario scenario{index::IndexedDocument(std::move(doc)),
                    twig::ParseQuery("//conference//title").value(),
                    std::move(relevant)};
  return scenario;
}

struct Quality {
  double precision_at_10 = 0;
  double mrr = 0;
};

Quality Judge(const std::vector<xml::NodeId>& ordering,
              const std::vector<xml::NodeId>& relevant) {
  Quality quality;
  std::set<xml::NodeId> truth(relevant.begin(), relevant.end());
  size_t hits = 0;
  for (size_t i = 0; i < ordering.size() && i < 10; ++i) {
    if (truth.contains(ordering[i])) ++hits;
  }
  quality.precision_at_10 = static_cast<double>(hits) / 10.0;
  for (size_t i = 0; i < ordering.size(); ++i) {
    if (truth.contains(ordering[i])) {
      quality.mrr = 1.0 / static_cast<double>(i + 1);
      break;
    }
  }
  return quality;
}

/// Deduplicated output ordering from ranked results (first occurrence).
std::vector<xml::NodeId> Ordering(
    const std::vector<ranking::RankedResult>& ranked) {
  std::vector<xml::NodeId> ordering;
  std::set<xml::NodeId> seen;
  for (const ranking::RankedResult& result : ranked) {
    if (seen.insert(result.output).second) ordering.push_back(result.output);
  }
  return ordering;
}

void RunScenario(std::string_view name, const Scenario& scenario,
                 Table* table) {
  auto evaluated = twig::Evaluate(scenario.indexed, scenario.query);
  CHECK(evaluated.ok());
  ranking::Ranker ranker(scenario.indexed);

  struct Contender {
    std::string name;
    ranking::RankingOptions options;
  };
  std::vector<Contender> contenders = {
      {"lotusx-full", {}},
      {"content-only", {.content_weight = 1, .structure_weight = 0,
                        .specificity_weight = 0}},
      {"structure-only", {.content_weight = 0, .structure_weight = 1,
                          .specificity_weight = 0}},
  };
  for (const Contender& contender : contenders) {
    std::vector<ranking::RankedResult> ranked;
    bench::MedianMillis(
        "rank",
        "scenario=" + std::string(name) + " ranker=" + contender.name +
            " matches=" + std::to_string(evaluated->matches.size()),
        5, [&] {
          ranked =
              ranker.Rank(scenario.query, evaluated->matches,
                          contender.options);
        });
    Quality quality = Judge(Ordering(ranked), scenario.relevant);
    table->AddRow({std::string(name), contender.name,
                   Fmt(quality.precision_at_10, 2), Fmt(quality.mrr, 3)});
  }
  // Document-order baseline ("unranked list").
  {
    std::vector<xml::NodeId> ordering =
        evaluated->OutputNodes(scenario.query.output());
    Quality quality = Judge(ordering, scenario.relevant);
    table->AddRow({std::string(name), "doc-order",
                   Fmt(quality.precision_at_10, 2), Fmt(quality.mrr, 3)});
  }
  // Random baseline, averaged over 20 shuffles.
  {
    std::vector<xml::NodeId> ordering =
        evaluated->OutputNodes(scenario.query.output());
    Random random(99);
    Quality sum;
    for (int i = 0; i < 20; ++i) {
      random.Shuffle(ordering);
      Quality quality = Judge(ordering, scenario.relevant);
      sum.precision_at_10 += quality.precision_at_10;
      sum.mrr += quality.mrr;
    }
    table->AddRow({std::string(name), "random",
                   Fmt(sum.precision_at_10 / 20, 2), Fmt(sum.mrr / 20, 3)});
  }
}

}  // namespace
}  // namespace lotusx

int main(int argc, char** argv) {
  std::printf(
      "E5: ranking quality against planted ground truth (precision@10, "
      "MRR)\n\n");
  lotusx::bench::Table table({"scenario", "ranker", "P@10", "MRR"});
  {
    lotusx::Scenario scenario = lotusx::BuildContentScenario(11);
    lotusx::RunScenario("A content (10/310 relevant)", scenario, &table);
  }
  {
    lotusx::Scenario scenario = lotusx::BuildStructureScenario(13);
    lotusx::RunScenario("B structure (40/1040 relevant)", scenario, &table);
  }
  table.Print();
  std::printf(
      "\nexpected shape: lotusx-full near the top in both scenarios;\n"
      "content-only wins A but collapses on B, structure-only vice versa;\n"
      "doc-order and random trail far behind in both.\n");
  return lotusx::bench::WriteJsonIfRequested(argc, argv);
}
