// Experiment E2 — position-aware vs global (position-agnostic) candidate
// suggestion, the core UX claim of LotusX. For a set of query-building
// situations (anchor query + axis), both suggestion modes produce their
// top candidates; each candidate is judged by whether actually adding it
// at that position leaves the query satisfiable in the data.
//
// Expected shape: position-aware validity is 100% by construction; the
// global baseline degrades with schema heterogeneity (worst on the store
// catalog, where the same child tags exist under only some parents).

#include <cstdio>

#include "autocomplete/completion.h"
#include "bench/bench_util.h"
#include "datagen/datagen.h"
#include "index/indexed_document.h"
#include "twig/query_parser.h"
#include "xml/writer.h"

namespace lotusx {
namespace {

using autocomplete::Candidate;
using autocomplete::CompletionEngine;
using autocomplete::TagRequest;
using bench::Fmt;
using bench::Table;

struct Situation {
  std::string anchor_query;  // the partial query; anchor is its node 0
  twig::Axis axis;
};

struct ModeStats {
  double valid = 0;
  double total = 0;
  double latency_ms = 0;
};

void Evaluate(const index::IndexedDocument& indexed,
              const std::vector<Situation>& situations, bool position_aware,
              ModeStats* stats) {
  CompletionEngine engine(indexed);
  for (const Situation& situation : situations) {
    twig::TwigQuery query =
        twig::ParseQuery(situation.anchor_query).value();
    TagRequest request;
    request.anchor = 0;
    request.axis = situation.axis;
    request.limit = 10;
    request.position_aware = position_aware;
    double ms = bench::MedianMillis(
        "complete_tag",
        "anchor=" + situation.anchor_query +
            " position_aware=" + (position_aware ? "1" : "0"),
        20, [&] {
          auto candidates = engine.CompleteTag(query, request);
          CHECK(candidates.ok());
        });
    stats->latency_ms += ms;
    auto candidates = engine.CompleteTag(query, request);
    CHECK(candidates.ok());
    for (const Candidate& candidate : *candidates) {
      stats->total += 1;
      if (engine.ExtensionIsSatisfiable(query, 0, situation.axis,
                                        candidate.text)) {
        stats->valid += 1;
      }
    }
  }
}

void RunDataset(std::string_view name, xml::Document document,
                const std::vector<Situation>& situations, Table* table) {
  index::IndexedDocument indexed(std::move(document));
  ModeStats aware;
  ModeStats global;
  Evaluate(indexed, situations, /*position_aware=*/true, &aware);
  Evaluate(indexed, situations, /*position_aware=*/false, &global);
  table->AddRow({std::string(name),
                 std::to_string(indexed.document().num_nodes()),
                 std::to_string(situations.size()),
                 Fmt(100.0 * aware.valid / std::max(aware.total, 1.0), 1),
                 Fmt(100.0 * global.valid / std::max(global.total, 1.0), 1),
                 Fmt(aware.latency_ms * 1000.0 / situations.size(), 1),
                 Fmt(global.latency_ms * 1000.0 / situations.size(), 1)});
}

}  // namespace
}  // namespace lotusx

int main(int argc, char** argv) {
  using lotusx::Situation;
  using lotusx::twig::Axis;
  std::printf(
      "E2: structural validity of suggested candidates, position-aware vs "
      "global\n(validity%% = candidates that keep the query satisfiable "
      "when added)\n\n");

  lotusx::bench::Table table({"dataset", "nodes", "situations",
                              "aware valid%", "global valid%", "aware us",
                              "global us"});

  {
    lotusx::datagen::StoreOptions options;
    options.num_products = lotusx::bench::SmokeMode() ? 100 : 2000;
    std::vector<Situation> situations = {
        {"//product", Axis::kChild},    {"//review", Axis::kChild},
        {"//category", Axis::kChild},   {"//stock", Axis::kChild},
        {"//store", Axis::kChild},      {"//product", Axis::kDescendant},
        {"//review", Axis::kDescendant}, {"//*[rating]", Axis::kChild},
        {"//product[review]", Axis::kChild},
        {"//category[product]", Axis::kChild},
    };
    lotusx::RunDataset("store", lotusx::datagen::GenerateStore(options),
                       situations, &table);
  }
  {
    lotusx::datagen::XmarkOptions options;
    const bool smoke = lotusx::bench::SmokeMode();
    options.num_items = smoke ? 40 : 400;
    options.num_people = smoke ? 20 : 200;
    options.num_auctions = smoke ? 20 : 200;
    std::vector<Situation> situations = {
        {"//item", Axis::kChild},        {"//person", Axis::kChild},
        {"//open_auction", Axis::kChild}, {"//mail", Axis::kChild},
        {"//listitem", Axis::kChild},    {"//profile", Axis::kChild},
        {"//item", Axis::kDescendant},   {"//bidder", Axis::kChild},
        {"//*[payment]", Axis::kChild},  {"//description", Axis::kChild},
    };
    lotusx::RunDataset("xmark", lotusx::datagen::GenerateXmark(options),
                       situations, &table);
  }
  {
    lotusx::datagen::DblpOptions options;
    options.num_publications = lotusx::bench::SmokeMode() ? 200 : 4000;
    std::vector<Situation> situations = {
        {"//article", Axis::kChild},       {"//book", Axis::kChild},
        {"//inproceedings", Axis::kChild}, {"//dblp", Axis::kChild},
        {"//article", Axis::kDescendant},  {"//*[isbn]", Axis::kChild},
        {"//*[journal]", Axis::kChild},    {"//*[booktitle]", Axis::kChild},
    };
    lotusx::RunDataset("dblp", lotusx::datagen::GenerateDblp(options),
                       situations, &table);
  }

  table.Print();
  std::printf(
      "\nexpected shape: aware = 100%% by construction; global clearly\n"
      "below (suggests frequent tags that cannot occur at the position),\n"
      "worst where sibling element types differ most (store/xmark).\n");
  return lotusx::bench::WriteJsonIfRequested(argc, argv);
}
