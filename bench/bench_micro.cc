// Microbenchmarks (google-benchmark) for the hot primitives underneath
// the experiment harnesses: XML parsing throughput, label decoding, trie
// completion, schema-level evaluation, posting intersection, and SLCA.
// These are the numbers to watch when optimizing; the E1..E9 binaries
// measure end-to-end behaviour.

#include <benchmark/benchmark.h>

#include "autocomplete/completion.h"
#include "bench/bench_util.h"
#include "common/metrics.h"
#include "common/statement_store.h"
#include "datagen/datagen.h"
#include "lotusx/engine.h"
#include "index/indexed_document.h"
#include "keyword/keyword_search.h"
#include "labeling/extended_dewey.h"
#include "twig/evaluator.h"
#include "twig/query_parser.h"
#include "twig/schema_match.h"
#include "xml/dom_builder.h"
#include "xml/writer.h"

namespace lotusx {
namespace {

const index::IndexedDocument& SharedCorpus() {
  static const index::IndexedDocument corpus = [] {
    datagen::DblpOptions options;
    options.num_publications = bench::SmokeMode() ? 200 : 4000;
    return index::IndexedDocument(datagen::GenerateDblp(options));
  }();
  return corpus;
}

void BM_XmlParse(benchmark::State& state) {
  datagen::DblpOptions options;
  options.num_publications = static_cast<int>(state.range(0));
  std::string xml = xml::WriteXml(datagen::GenerateDblp(options));
  int64_t nodes = 0;
  for (auto _ : state) {
    auto document = xml::ParseDocument(xml);
    CHECK(document.ok());
    nodes = document->num_nodes();
    benchmark::DoNotOptimize(document);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(xml.size()));
  state.counters["nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_XmlParse)->Arg(100)->Arg(1000);

void BM_IndexBuild(benchmark::State& state) {
  datagen::DblpOptions options;
  options.num_publications = static_cast<int>(state.range(0));
  xml::Document reference = datagen::GenerateDblp(options);
  std::string xml = xml::WriteXml(reference);
  for (auto _ : state) {
    auto document = xml::ParseDocument(xml);
    CHECK(document.ok());
    index::IndexedDocument indexed(std::move(document).value());
    benchmark::DoNotOptimize(indexed);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          reference.num_nodes());
}
BENCHMARK(BM_IndexBuild)->Arg(100)->Arg(1000);

void BM_ExtendedDeweyDecode(benchmark::State& state) {
  const index::IndexedDocument& corpus = SharedCorpus();
  const xml::Document& document = corpus.document();
  labeling::XTagId root_tag = document.node(0).tag;
  xml::NodeId node = document.num_nodes() - 1;
  for (auto _ : state) {
    auto path = labeling::ExtendedDeweyStore::DecodeTagPath(
        corpus.transducer(), root_tag, corpus.extended_dewey().label(node));
    benchmark::DoNotOptimize(path);
  }
}
BENCHMARK(BM_ExtendedDeweyDecode);

void BM_TrieComplete(benchmark::State& state) {
  const index::IndexedDocument& corpus = SharedCorpus();
  for (auto _ : state) {
    auto completions = corpus.terms().term_trie().Complete(
        "a", static_cast<size_t>(state.range(0)));
    benchmark::DoNotOptimize(completions);
  }
}
BENCHMARK(BM_TrieComplete)->Arg(5)->Arg(50);

void BM_SchemaBindings(benchmark::State& state) {
  const index::IndexedDocument& corpus = SharedCorpus();
  twig::TwigQuery query =
      twig::ParseQuery("//article[author][year]/title").value();
  for (auto _ : state) {
    auto bindings = twig::SchemaBindings(corpus, query);
    benchmark::DoNotOptimize(bindings);
  }
}
BENCHMARK(BM_SchemaBindings);

void BM_CompleteTagPositionAware(benchmark::State& state) {
  const index::IndexedDocument& corpus = SharedCorpus();
  autocomplete::CompletionEngine engine(corpus);
  twig::TwigQuery query = twig::ParseQuery("//article[year]").value();
  autocomplete::TagRequest request;
  request.anchor = 0;
  request.axis = twig::Axis::kChild;
  for (auto _ : state) {
    auto candidates = engine.CompleteTag(query, request);
    CHECK(candidates.ok());
    benchmark::DoNotOptimize(candidates);
  }
}
BENCHMARK(BM_CompleteTagPositionAware);

void BM_TwigEvaluate(benchmark::State& state) {
  const index::IndexedDocument& corpus = SharedCorpus();
  twig::TwigQuery query =
      twig::ParseQuery("//article[author]/title").value();
  twig::EvalOptions options;
  options.algorithm = static_cast<twig::Algorithm>(state.range(0));
  uint64_t matches = 0;
  for (auto _ : state) {
    auto result = twig::Evaluate(corpus, query, options);
    CHECK(result.ok());
    matches = result->stats.matches;
  }
  state.counters["matches"] = static_cast<double>(matches);
  state.SetLabel(std::string(twig::AlgorithmName(
      static_cast<twig::Algorithm>(state.range(0)))));
}
BENCHMARK(BM_TwigEvaluate)
    ->Arg(static_cast<int>(twig::Algorithm::kStructuralJoin))
    ->Arg(static_cast<int>(twig::Algorithm::kTwigStack))
    ->Arg(static_cast<int>(twig::Algorithm::kTJFast));

// The observability overhead pin: the same evaluation with the metrics
// registry globally disabled. Compare against the BM_TwigEvaluate row of
// the same algorithm — the instrumented path must stay within 2% (the
// counters are relaxed atomics behind a single branch when disabled).
void BM_TwigEvaluateMetricsOff(benchmark::State& state) {
  const index::IndexedDocument& corpus = SharedCorpus();
  twig::TwigQuery query =
      twig::ParseQuery("//article[author]/title").value();
  twig::EvalOptions options;
  options.algorithm = static_cast<twig::Algorithm>(state.range(0));
  const bool was_enabled = metrics::SetEnabled(false);
  for (auto _ : state) {
    auto result = twig::Evaluate(corpus, query, options);
    CHECK(result.ok());
    benchmark::DoNotOptimize(result);
  }
  metrics::SetEnabled(was_enabled);
  state.SetLabel(std::string(twig::AlgorithmName(
                     static_cast<twig::Algorithm>(state.range(0)))) +
                 "/metrics-off");
}
BENCHMARK(BM_TwigEvaluateMetricsOff)
    ->Arg(static_cast<int>(twig::Algorithm::kStructuralJoin))
    ->Arg(static_cast<int>(twig::Algorithm::kTwigStack))
    ->Arg(static_cast<int>(twig::Algorithm::kTJFast));

const Engine& SharedEngine() {
  static const Engine engine = [] {
    datagen::DblpOptions options;
    options.num_publications = bench::SmokeMode() ? 200 : 4000;
    StatusOr<Engine> built =
        Engine::FromXmlText(xml::WriteXml(datagen::GenerateDblp(options)));
    CHECK(built.ok());
    return std::move(*built);
  }();
  return engine;
}

// The statement-store overhead pin, mirroring the metrics twin above:
// the full Engine::Search pipeline (parse + fingerprint + plan + join +
// rank + statement Record) against the identical run with the
// statements kill switch off. The fingerprint hash and one sharded
// Record are all that differ — budget <2%, enforced by
// tools/bench_compare.py against bench/baselines/.
void BM_EngineSearch(benchmark::State& state) {
  const Engine& engine = SharedEngine();
  SearchOptions options;
  options.rewrite_on_empty = false;
  for (auto _ : state) {
    auto result = engine.Search("//article[author]/title", options);
    CHECK(result.ok());
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_EngineSearch);

void BM_EngineSearchStatementsOff(benchmark::State& state) {
  const Engine& engine = SharedEngine();
  SearchOptions options;
  options.rewrite_on_empty = false;
  const bool was_enabled = stmt::SetEnabled(false);
  for (auto _ : state) {
    auto result = engine.Search("//article[author]/title", options);
    CHECK(result.ok());
    benchmark::DoNotOptimize(result);
  }
  stmt::SetEnabled(was_enabled);
  state.SetLabel("statements-off");
}
BENCHMARK(BM_EngineSearchStatementsOff);

void BM_SlcaSearch(benchmark::State& state) {
  const index::IndexedDocument& corpus = SharedCorpus();
  // Two moderately frequent terms from the corpus vocabulary.
  auto terms = corpus.terms().term_trie().Complete("", 20);
  CHECK_GE(terms.size(), 12u);
  std::string keywords = terms[3].key + " " + terms[11].key;
  for (auto _ : state) {
    auto hits = keyword::SlcaSearch(corpus, keywords);
    CHECK(hits.ok());
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_SlcaSearch);

void BM_QueryParse(benchmark::State& state) {
  constexpr std::string_view kQuery =
      R"(//article[ordered][author[~"lu"]][year[="2005"]]//title!)";
  for (auto _ : state) {
    auto query = twig::ParseQuery(kQuery);
    CHECK(query.ok());
    benchmark::DoNotOptimize(query);
  }
}
BENCHMARK(BM_QueryParse);

}  // namespace
}  // namespace lotusx

BENCHMARK_MAIN();
