// Replaceable global allocation functions that count every heap
// allocation. Compiled directly into each bench executable; the deletes
// forward to free(), matching the malloc-based news below.
//
// The counters must not distort what they measure: allocation-heavy
// workloads reach hundreds of thousands of news per op, so a lock-xadd
// per allocation would show up in the timings. Each thread claims a
// slot of single-writer atomics and bumps them with plain load+store
// (compiles to an unlocked add); CurrentAllocCounters() sums the slots
// plus the fold of exited threads. Cross-thread reads are racy only in
// the benign sense — atomics, single writer, totals exact once the
// allocating threads are quiesced.

#include "bench/alloc_tracker.h"

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

namespace lotusx::bench {
namespace {

struct Slot {
  std::atomic<uint64_t> allocs{0};
  std::atomic<uint64_t> bytes{0};
  std::atomic<bool> used{false};
};

constexpr int kMaxSlots = 256;
Slot g_slots[kMaxSlots];
// Totals from threads that already exited (plus overflow when more than
// kMaxSlots threads are live at once).
std::atomic<uint64_t> g_folded_allocs{0};
std::atomic<uint64_t> g_folded_bytes{0};

inline void BumpRelaxed(std::atomic<uint64_t>* counter, uint64_t delta) {
  counter->store(counter->load(std::memory_order_relaxed) + delta,
                 std::memory_order_relaxed);
}

/// Claims a slot on first use in each thread and folds it back into the
/// global totals on thread exit. Slot claiming never allocates (operator
/// new would recurse).
struct ThreadCounters {
  Slot* slot = nullptr;
  ThreadCounters() {
    for (int i = 0; i < kMaxSlots; ++i) {
      bool expected = false;
      if (g_slots[i].used.compare_exchange_strong(
              expected, true, std::memory_order_acq_rel)) {
        slot = &g_slots[i];
        break;
      }
    }
  }
  ~ThreadCounters() {
    if (slot == nullptr) return;
    g_folded_allocs.fetch_add(slot->allocs.load(std::memory_order_relaxed),
                              std::memory_order_relaxed);
    g_folded_bytes.fetch_add(slot->bytes.load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
    slot->allocs.store(0, std::memory_order_relaxed);
    slot->bytes.store(0, std::memory_order_relaxed);
    slot->used.store(false, std::memory_order_release);
  }
};

thread_local ThreadCounters t_counters;

void* TrackedAlloc(std::size_t size, std::size_t align) {
  if (Slot* slot = t_counters.slot; slot != nullptr) {
    BumpRelaxed(&slot->allocs, 1);
    BumpRelaxed(&slot->bytes, size);
  } else {
    g_folded_allocs.fetch_add(1, std::memory_order_relaxed);
    g_folded_bytes.fetch_add(size, std::memory_order_relaxed);
  }
  if (align > alignof(std::max_align_t)) {
    // aligned_alloc wants the size rounded up to the alignment.
    std::size_t rounded = (size + align - 1) & ~(align - 1);
    return std::aligned_alloc(align, rounded);
  }
  return std::malloc(size == 0 ? 1 : size);
}

}  // namespace

AllocCounters CurrentAllocCounters() {
  AllocCounters counters;
  counters.allocs = g_folded_allocs.load(std::memory_order_relaxed);
  counters.bytes = g_folded_bytes.load(std::memory_order_relaxed);
  for (const Slot& slot : g_slots) {
    counters.allocs += slot.allocs.load(std::memory_order_relaxed);
    counters.bytes += slot.bytes.load(std::memory_order_relaxed);
  }
  return counters;
}

}  // namespace lotusx::bench

void* operator new(std::size_t size) {
  void* p = lotusx::bench::TrackedAlloc(size, 0);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = lotusx::bench::TrackedAlloc(size, 0);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return lotusx::bench::TrackedAlloc(size, 0);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return lotusx::bench::TrackedAlloc(size, 0);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = lotusx::bench::TrackedAlloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = lotusx::bench::TrackedAlloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return lotusx::bench::TrackedAlloc(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return lotusx::bench::TrackedAlloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t,
                     const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}
