// Experiment E6 — effectiveness of the query rewriting solution. Gold
// queries that do return answers are systematically perturbed into
// failing queries (the mistakes a schema-unaware user makes); the
// rewriter must recover. Metrics per perturbation class: success rate,
// recall of the gold answers, rewrite-chain penalty, queries evaluated,
// and latency.
//
// Expected shape: near-perfect recovery for axis and spelling mistakes
// (cheap, targeted rules), high recovery for sibling-tag and
// over-constrained-value mistakes, with few evaluations each.

#include <cstdio>
#include <set>

#include "bench/bench_util.h"
#include "datagen/datagen.h"
#include "index/indexed_document.h"
#include "rewrite/rewriter.h"
#include "twig/evaluator.h"
#include "twig/query_parser.h"

namespace lotusx {
namespace {

using bench::Fmt;
using bench::Table;

struct Case {
  std::string gold;       // query with answers
  std::string perturbed;  // broken variant a user might draw
};

struct ClassResult {
  int attempts = 0;
  int succeeded = 0;
  double recall_sum = 0;
  double penalty_sum = 0;
  double evaluations_sum = 0;
  double latency_ms_sum = 0;
};

std::set<xml::NodeId> GoldAnswers(const index::IndexedDocument& indexed,
                                  const twig::TwigQuery& query) {
  auto result = twig::Evaluate(indexed, query);
  CHECK(result.ok());
  auto outputs = result->OutputNodes(query.output());
  return {outputs.begin(), outputs.end()};
}

/// `top_k` > 1 lets recall be scored against the best of the first k
/// successful rewrites (the alternatives a UI would offer), which is the
/// fair metric for ambiguous perturbations like wrong-sibling tags.
void RunClass(const index::IndexedDocument& indexed,
              const std::vector<Case>& cases, ClassResult* out,
              size_t top_k = 1) {
  rewrite::Rewriter rewriter(indexed);
  for (const Case& c : cases) {
    twig::TwigQuery gold = twig::ParseQuery(c.gold).value();
    twig::TwigQuery perturbed = twig::ParseQuery(c.perturbed).value();
    std::set<xml::NodeId> gold_answers = GoldAnswers(indexed, gold);
    CHECK(!gold_answers.empty()) << "gold query has no answers: " << c.gold;
    // The perturbed query must actually fail, else it is not a test case.
    auto direct = twig::Evaluate(indexed, perturbed);
    CHECK(direct.ok());
    CHECK(direct->matches.empty())
        << "perturbed query unexpectedly matches: " << c.perturbed;

    ++out->attempts;
    Timer timer;
    auto outcomes = rewriter.RewriteAll(perturbed, {}, top_k);
    out->latency_ms_sum += timer.ElapsedMillis();
    CHECK(outcomes.ok());
    if (outcomes->empty()) continue;
    ++out->succeeded;
    out->penalty_sum += outcomes->front().penalty;
    out->evaluations_sum += outcomes->back().evaluations;
    double best_recall = 0;
    for (const rewrite::RewriteOutcome& outcome : *outcomes) {
      auto outputs = outcome.result.OutputNodes(outcome.query.output());
      size_t recovered = 0;
      for (xml::NodeId node : outputs) {
        if (gold_answers.contains(node)) ++recovered;
      }
      best_recall = std::max(
          best_recall,
          static_cast<double>(recovered) / gold_answers.size());
    }
    out->recall_sum += best_recall;
  }
}

void AddRow(Table* table, std::string_view name, const ClassResult& r) {
  int n = std::max(r.succeeded, 1);
  table->AddRow({std::string(name), std::to_string(r.attempts),
                 Fmt(100.0 * r.succeeded / std::max(r.attempts, 1), 0),
                 Fmt(100.0 * r.recall_sum / n, 1), Fmt(r.penalty_sum / n, 2),
                 Fmt(r.evaluations_sum / n, 1),
                 Fmt(r.latency_ms_sum / std::max(r.attempts, 1), 1)});
  bench::BenchJson::Instance().Record(
      "rewrite_class",
      "class=" + std::string(name) + " cases=" + std::to_string(r.attempts),
      {r.latency_ms_sum / std::max(r.attempts, 1)});
}

}  // namespace
}  // namespace lotusx

int main(int argc, char** argv) {
  std::printf(
      "E6: query rewriting — recovery from user mistakes\n"
      "(recall%% = gold answers recovered by the rewritten query)\n\n");

  lotusx::datagen::StoreOptions store_options;
  store_options.num_products = lotusx::bench::SmokeMode() ? 100 : 1500;
  lotusx::index::IndexedDocument store(
      lotusx::datagen::GenerateStore(store_options));
  lotusx::datagen::DblpOptions dblp_options;
  dblp_options.num_publications = lotusx::bench::SmokeMode() ? 200 : 3000;
  lotusx::index::IndexedDocument dblp(
      lotusx::datagen::GenerateDblp(dblp_options));

  lotusx::bench::Table table({"perturbation class", "cases", "success%",
                              "recall%", "avg penalty", "avg evals",
                              "avg ms"});

  // Class 1: wrong axis ('/' where the data needs '//').
  {
    lotusx::ClassResult result;
    lotusx::RunClass(store,
                     {{"//product//reviewer", "//product/reviewer"},
                      {"//category//rating", "//category/rating"},
                      {"//store//review/comment", "//store/review/comment"},
                      {"//category//reviewer", "//category/reviewer"}},
                     &result);
    lotusx::RunClass(dblp,
                     {{"//dblp//author", "/author"},
                      {"//dblp//isbn", "//dblp/isbn"}},
                     &result);
    lotusx::AddRow(&table, "wrong axis", result);
  }
  // Class 2: misspelled tags (edit distance 1-2).
  {
    lotusx::ClassResult result;
    lotusx::RunClass(store,
                     {{"//product/price", "//product/prise"},
                      {"//product/brand", "//product/brandt"},
                      {"//review/rating", "//review/ratting"},
                      {"//product/description", "//product/descripton"}},
                     &result);
    lotusx::RunClass(dblp,
                     {{"//article/title", "//article/titel"},
                      {"//article/author", "//article/autor"},
                      {"//inproceedings/pages", "//inproceedings/pags"}},
                     &result);
    lotusx::AddRow(&table, "misspelled tag", result);
  }
  // Class 3: wrong sibling tag (user guesses a tag that exists elsewhere
  // or not at all at this position).
  {
    lotusx::ClassResult result;
    lotusx::RunClass(dblp,
                     {{"//book/publisher", "//book/journal"},
                      {"//article/journal", "//article/publisher"},
                      {"//inproceedings/booktitle", "//inproceedings/journal"}},
                     &result, /*top_k=*/5);
    lotusx::RunClass(store, {{"//product/brand", "//product/reviewer"}},
                     &result, /*top_k=*/5);
    lotusx::AddRow(&table, "wrong sibling tag (recall@5)", result);
  }
  // Class 4: over-constrained value (equality instead of keywords).
  // The keywords come from the generated corpus itself: the two most
  // frequent title terms. Titles are always multi-word, so single-term
  // equality fails while containment succeeds.
  {
    lotusx::ClassResult result;
    const lotusx::index::Trie* title_trie = dblp.terms().term_trie_for_tag(
        dblp.document().FindTag("title"));
    CHECK(title_trie != nullptr);
    std::vector<lotusx::Case> cases;
    for (const lotusx::index::Completion& term :
         title_trie->Complete("", 3)) {
      cases.push_back(
          lotusx::Case{"//article/title[~\"" + term.key + "\"]",
                       "//article/title[=\"" + term.key + "\"]"});
    }
    lotusx::RunClass(dblp, cases, &result);
    lotusx::AddRow(&table, "over-constrained value", result);
  }
  // Class 5: impossible branch (constraint that exists nowhere).
  {
    lotusx::ClassResult result;
    lotusx::RunClass(store,
                     {{"//product/name!", "//product[isbn]/name!"},
                      {"//review/rating!", "//review[price]/rating!"}},
                     &result);
    lotusx::RunClass(dblp, {{"//book/title!", "//book[booktitle]/title!"}},
                     &result);
    lotusx::AddRow(&table, "impossible branch", result);
  }

  table.Print();
  std::printf(
      "\nexpected shape: axis and spelling classes recover with recall\n"
      "near 100%% at penalty <= 2.5 and a handful of evaluations; branch\n"
      "drops cost more; every class succeeds well above 50%%.\n");
  return lotusx::bench::WriteJsonIfRequested(argc, argv);
}
