// Experiment E7 — index construction and footprint. For growing document
// sizes: XML parse time, per-component index build time, memory per
// component, and persistence round-trip (file size, save/load time).
//
// Expected shape: every build phase is linear in document size; the
// extended-Dewey labels cost the most label memory (they encode tag
// paths); the keyword index dominates build time (tokenization); loading
// a saved image is much cheaper than re-indexing from XML because the
// tokenization never reruns.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "datagen/datagen.h"
#include "index/indexed_document.h"
#include "xml/dom_builder.h"
#include "xml/writer.h"

namespace lotusx {
namespace {

using bench::Fmt;
using bench::Table;

void RunSize(std::string_view corpus, xml::Document document, Table* build,
             Table* memory, Table* persist) {
  std::string xml = xml::WriteXml(document);
  // Parse.
  Timer parse_timer;
  auto parsed = xml::ParseDocument(xml);
  CHECK(parsed.ok());
  double parse_ms = parse_timer.ElapsedMillis();
  int32_t nodes = parsed->num_nodes();

  // Build all indexes.
  index::IndexedDocument indexed(std::move(parsed).value());
  const index::IndexBuildStats& stats = indexed.build_stats();
  std::string label =
      std::string(corpus) + "/" + std::to_string(nodes);
  build->AddRow({label, Fmt(parse_ms, 1), Fmt(stats.dataguide_ms, 1),
                 Fmt(stats.tag_streams_ms, 1), Fmt(stats.term_index_ms, 1),
                 Fmt(stats.containment_ms, 1),
                 Fmt(stats.dewey_ms + stats.extended_dewey_ms +
                         stats.transducer_ms,
                     1),
                 Fmt(stats.total_ms + parse_ms, 1)});

  auto mib = [](size_t bytes) { return Fmt(bytes / (1024.0 * 1024.0), 2); };
  memory->AddRow({label, mib(stats.document_bytes),
                  mib(stats.containment_bytes), mib(stats.dewey_bytes),
                  mib(stats.extended_dewey_bytes),
                  mib(stats.dataguide_bytes), mib(stats.tag_streams_bytes),
                  mib(stats.term_index_bytes), mib(stats.total_bytes())});

  // Persistence.
  std::string path = "/tmp/lotusx_bench_index.ltsx";
  Timer save_timer;
  CHECK(indexed.SaveTo(path).ok());
  double save_ms = save_timer.ElapsedMillis();
  std::string image;
  CHECK(ReadFileToString(path, &image).ok());
  Timer load_timer;
  auto loaded = index::IndexedDocument::LoadFrom(path);
  CHECK(loaded.ok());
  double load_ms = load_timer.ElapsedMillis();
  std::remove(path.c_str());
  persist->AddRow({label, mib(image.size()), Fmt(save_ms, 1), Fmt(load_ms, 1),
                   Fmt(stats.total_ms + parse_ms, 1)});

  std::string params =
      "corpus=" + std::string(corpus) + " nodes=" + std::to_string(nodes);
  bench::BenchJson::Instance().Record("xml_parse", params, {parse_ms});
  bench::BenchJson::Instance().Record("index_build", params,
                                      {stats.total_ms});
  bench::BenchJson::Instance().Record("index_save", params, {save_ms});
  bench::BenchJson::Instance().Record("index_load", params, {load_ms});
}

}  // namespace
}  // namespace lotusx

int main(int argc, char** argv) {
  std::printf("E7: index construction, footprint, persistence\n\n");
  lotusx::bench::Table build({"corpus/nodes", "parse ms", "dataguide ms",
                              "streams ms", "terms ms", "containment ms",
                              "dewey+ext ms", "total ms"});
  lotusx::bench::Table memory({"corpus/nodes", "doc MiB", "contain MiB",
                               "dewey MiB", "extdewey MiB", "guide MiB",
                               "streams MiB", "terms MiB", "total MiB"});
  lotusx::bench::Table persist({"corpus/nodes", "file MiB", "save ms",
                                "load ms", "rebuild ms"});

  for (int64_t nodes :
       lotusx::bench::Scales({10'000, 50'000, 200'000, 1'000'000})) {
    lotusx::RunSize("dblp",
                    lotusx::datagen::GenerateDblpWithApproxNodes(5, nodes),
                    &build, &memory, &persist);
  }
  lotusx::RunSize("store",
                  lotusx::datagen::GenerateStoreWithApproxNodes(
                      5, lotusx::bench::ScaledNodes(200'000)),
                  &build, &memory, &persist);
  lotusx::RunSize("xmark",
                  lotusx::datagen::GenerateXmarkWithApproxNodes(
                      5, lotusx::bench::ScaledNodes(200'000)),
                  &build, &memory, &persist);

  std::printf("build time breakdown:\n");
  build.Print();
  std::printf("\nmemory breakdown:\n");
  memory.Print();
  std::printf("\npersistence (load = decode + rebuild derived indexes):\n");
  persist.Print();
  std::printf(
      "\nexpected shape: all phases linear in nodes; term index dominates\n"
      "build; extended Dewey is the largest label store; load beats\n"
      "rebuild-from-XML.\n");
  return lotusx::bench::WriteJsonIfRequested(argc, argv);
}
