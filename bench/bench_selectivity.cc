// Experiment E8 (ablation) — quality of the DataGuide-based cardinality
// estimator and of the cost-based automatic algorithm choice.
//
// Part 1: estimated vs actual match counts over a query suite (the
// q-error, max(est/act, act/est), is the standard estimator metric).
// Part 2: regret of the kAuto algorithm picker — how much slower the
// chosen algorithm is than the best one per query.
//
// Expected shape: q-error near 1 for structure-only queries (the schema
// evaluation is exact per node; only branch correlation adds error) and
// within a small factor for predicate queries (term independence); the
// auto picker's mean regret stays well below the cost of always choosing
// the worst algorithm, and it never picks a catastrophic plan.

#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/datagen.h"
#include "index/indexed_document.h"
#include "twig/evaluator.h"
#include "twig/query_parser.h"
#include "twig/selectivity.h"

namespace lotusx {
namespace {

using bench::Fmt;
using bench::Table;

double QError(double estimated, double actual) {
  double est = std::max(estimated, 0.5);
  double act = std::max(actual, 0.5);
  return std::max(est / act, act / est);
}

struct Suite {
  std::string corpus;
  const index::IndexedDocument* indexed;
  std::vector<std::string> queries;
};

void RunEstimator(const Suite& suite, Table* table, double* qerror_sum,
                  int* count) {
  for (const std::string& text : suite.queries) {
    twig::TwigQuery query = bench::MustParse(text);
    twig::SelectivityEstimate estimate =
        twig::EstimateSelectivity(*suite.indexed, query);
    auto result = twig::Evaluate(*suite.indexed, query);
    CHECK(result.ok());
    double actual = static_cast<double>(result->matches.size());
    double qerror = QError(estimate.match_cardinality, actual);
    *qerror_sum += qerror;
    ++*count;
    table->AddRow({suite.corpus, text, Fmt(estimate.match_cardinality, 1),
                   Fmt(actual, 0), Fmt(qerror, 2)});
  }
}

void RunPicker(const Suite& suite, Table* table, double* regret_sum,
               double* worst_sum, int* count) {
  for (const std::string& text : suite.queries) {
    twig::TwigQuery query = bench::MustParse(text);
    double best = 1e18;
    double worst = 0;
    std::string best_name;
    for (twig::Algorithm algorithm :
         {twig::Algorithm::kStructuralJoin, twig::Algorithm::kPathStack,
          twig::Algorithm::kTwigStack, twig::Algorithm::kTJFast}) {
      if (algorithm == twig::Algorithm::kPathStack && !query.IsPath()) {
        continue;
      }
      double ms =
          bench::TimedEvaluate(*suite.indexed, query,
                               bench::EvalWith(algorithm), /*repetitions=*/3)
              .ms;
      if (ms < best) {
        best = ms;
        best_name = std::string(twig::AlgorithmName(algorithm));
      }
      worst = std::max(worst, ms);
    }
    twig::Algorithm chosen = twig::ChooseAlgorithm(*suite.indexed, query);
    double chosen_ms =
        bench::TimedEvaluate(*suite.indexed, query, bench::EvalWith(chosen),
                             /*repetitions=*/3)
            .ms;
    // Floor the denominator: ratios over ~0 ms baselines (empty-result
    // early exits) are noise, not plan-quality signal.
    double floor_ms = std::max(best, 0.05);
    double regret = chosen_ms / floor_ms;
    double worst_ratio = worst / floor_ms;
    *regret_sum += regret;
    *worst_sum += worst_ratio;
    ++*count;
    table->AddRow({suite.corpus, text,
                   std::string(twig::AlgorithmName(chosen)), best_name,
                   Fmt(chosen_ms, 2), Fmt(best, 2), Fmt(regret, 2),
                   Fmt(worst_ratio, 2)});
  }
}

}  // namespace
}  // namespace lotusx

int main(int argc, char** argv) {
  std::printf(
      "E8 (ablation): cardinality estimator accuracy and auto algorithm "
      "choice\n\n");

  lotusx::index::IndexedDocument dblp = lotusx::bench::MakeDblp(21, 120'000);
  lotusx::index::IndexedDocument xmark = lotusx::bench::MakeXmark(21, 80'000);

  lotusx::Suite dblp_suite{
      "dblp",
      &dblp,
      {"//article/title", "//article[author][year]/title",
       "//book[isbn]/publisher", R"(//article[year[="2001"]]/title)",
       "//dblp/*[author]/ee", R"(//inproceedings/pages)",
       R"(//article[title[~"xml"]]/author)"}};
  lotusx::Suite xmark_suite{
      "xmark",
      &xmark,
      {"//item[payment]/name", "//listitem//parlist",
       "//person[profile/interest]/name", "//open_auction[bidder]/seller",
       "//item[mailbox//mail]/location"}};

  {
    lotusx::bench::Table table(
        {"corpus", "query", "estimated", "actual", "q-error"});
    double qerror_sum = 0;
    int count = 0;
    lotusx::RunEstimator(dblp_suite, &table, &qerror_sum, &count);
    lotusx::RunEstimator(xmark_suite, &table, &qerror_sum, &count);
    std::printf("estimator accuracy:\n");
    table.Print();
    std::printf("mean q-error: %.2f over %d queries\n\n",
                qerror_sum / count, count);
  }
  {
    lotusx::bench::Table table({"corpus", "query", "chosen", "best",
                                "chosen ms", "best ms", "regret",
                                "worst/best"});
    double regret_sum = 0;
    double worst_sum = 0;
    int count = 0;
    lotusx::RunPicker(dblp_suite, &table, &regret_sum, &worst_sum, &count);
    lotusx::RunPicker(xmark_suite, &table, &regret_sum, &worst_sum, &count);
    std::printf("algorithm picker regret (chosen-time / best-time):\n");
    table.Print();
    std::printf(
        "mean regret %.2fx vs mean worst-case %.2fx over %d queries\n",
        regret_sum / count, worst_sum / count, count);
  }
  std::printf(
      "\nexpected shape: q-error close to 1 without predicates, modest\n"
      "with them; picker regret far below worst/best (it avoids the bad\n"
      "plans even when it misses the absolute best).\n");
  return lotusx::bench::WriteJsonIfRequested(argc, argv);
}
