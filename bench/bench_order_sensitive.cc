// Experiment E4 — order-sensitive queries. Measures (a) the selectivity
// of order constraints (ordered vs unordered answer counts), (b) their
// runtime overhead, and (c) the ablation the design calls out: enforcing
// order inside the holistic merge phase (pruning partial tuples early)
// vs naively post-filtering complete matches.
//
// Expected shape: integrated checking never loses to the post-filter and
// wins clearly when the order constraint is selective (it keeps the
// intermediate tuple count down); overall overhead vs unordered
// evaluation is a small constant factor.

#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/datagen.h"
#include "index/indexed_document.h"
#include "twig/evaluator.h"
#include "twig/order_filter.h"
#include "twig/query_parser.h"

namespace lotusx {
namespace {

using bench::Fmt;
using bench::Table;

struct Workload {
  std::string name;
  std::string query;  // must carry [ordered]
};

void Run(const index::IndexedDocument& indexed, const Workload& workload,
         Table* table) {
  twig::TwigQuery query = bench::MustParse(workload.query);
  CHECK(query.HasOrderConstraints());

  bench::TimedEval unordered = bench::TimedEvaluate(
      indexed, query,
      bench::OrderEval(/*apply_order=*/false, /*integrate_order=*/true));
  bench::TimedEval integrated = bench::TimedEvaluate(
      indexed, query,
      bench::OrderEval(/*apply_order=*/true, /*integrate_order=*/true));
  bench::TimedEval post_filter = bench::TimedEvaluate(
      indexed, query,
      bench::OrderEval(/*apply_order=*/true, /*integrate_order=*/false));
  // Same answers either way.
  CHECK_EQ(post_filter.result.stats.matches, integrated.result.stats.matches);

  table->AddRow({workload.name,
                 std::to_string(unordered.result.stats.matches),
                 std::to_string(integrated.result.stats.matches),
                 Fmt(unordered.ms, 2), Fmt(integrated.ms, 2),
                 Fmt(post_filter.ms, 2),
                 std::to_string(integrated.result.stats.intermediate_tuples),
                 std::to_string(post_filter.result.stats.intermediate_tuples)});
}

}  // namespace
}  // namespace lotusx

int main(int argc, char** argv) {
  std::printf(
      "E4: order-sensitive queries — selectivity, overhead, and integrated\n"
      "order checking vs naive post-filtering (same answers, different "
      "work)\n\n");

  const std::vector<lotusx::Workload> workloads = {
      // Holds by generator schema: name < brand < price in every product.
      {"name<price (always true)", "//product[ordered][name][price]"},
      {"name<brand<price", "//product[ordered][name][brand][price]"},
      // Impossible order: maximally selective.
      {"price<name (never true)", "//product[ordered][price][name]"},
      // Partially selective: review order among siblings varies... rating
      // always precedes comment inside one review, but across reviews the
      // pairing is free, so the constraint prunes cross pairs.
      {"rating<comment (cross-review)",
       "//product[ordered][review/rating][review/comment]"},
      {"category: name<product", "//category[ordered][name][product]"},
  };

  for (int64_t num_products : lotusx::bench::Scales({500, 2000, 8000},
                                                    /*smoke=*/100)) {
    lotusx::datagen::StoreOptions options;
    options.num_products = static_cast<int>(num_products);
    lotusx::index::IndexedDocument indexed(
        lotusx::datagen::GenerateStore(options));
    std::printf("--- store, %d nodes ---\n", indexed.document().num_nodes());
    lotusx::bench::Table table({"workload", "unord", "ordered", "unord ms",
                                "integ ms", "postf ms", "integ tuples",
                                "postf tuples"});
    for (const lotusx::Workload& workload : workloads) {
      lotusx::Run(indexed, workload, &table);
    }
    table.Print();
    std::printf("\n");
  }
  std::printf(
      "expected shape: ordered <= unord (order only filters); integ ms <=\n"
      "postf ms with the gap widening on selective constraints, where\n"
      "integrated pruning keeps 'integ tuples' well below 'postf tuples'.\n");
  return lotusx::bench::WriteJsonIfRequested(argc, argv);
}
