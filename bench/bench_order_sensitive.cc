// Experiment E4 — order-sensitive queries. Measures (a) the selectivity
// of order constraints (ordered vs unordered answer counts), (b) their
// runtime overhead, and (c) the ablation the design calls out: enforcing
// order inside the holistic merge phase (pruning partial tuples early)
// vs naively post-filtering complete matches.
//
// Expected shape: integrated checking never loses to the post-filter and
// wins clearly when the order constraint is selective (it keeps the
// intermediate tuple count down); overall overhead vs unordered
// evaluation is a small constant factor.

#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/datagen.h"
#include "index/indexed_document.h"
#include "twig/evaluator.h"
#include "twig/order_filter.h"
#include "twig/query_parser.h"

namespace lotusx {
namespace {

using bench::Fmt;
using bench::MedianMillis;
using bench::Table;

struct Workload {
  std::string name;
  std::string query;  // must carry [ordered]
};

void Run(const index::IndexedDocument& indexed, const Workload& workload,
         Table* table) {
  twig::TwigQuery query = twig::ParseQuery(workload.query).value();
  CHECK(query.HasOrderConstraints());

  twig::EvalOptions unordered;
  unordered.apply_order = false;
  twig::EvalOptions integrated;
  integrated.integrate_order = true;
  twig::EvalOptions post_filter;
  post_filter.integrate_order = false;

  uint64_t unordered_matches = 0;
  uint64_t ordered_matches = 0;
  uint64_t integrated_tuples = 0;
  uint64_t post_tuples = 0;

  double unordered_ms = MedianMillis(5, [&] {
    auto result = twig::Evaluate(indexed, query, unordered);
    CHECK(result.ok());
    unordered_matches = result->stats.matches;
  });
  double integrated_ms = MedianMillis(5, [&] {
    auto result = twig::Evaluate(indexed, query, integrated);
    CHECK(result.ok());
    ordered_matches = result->stats.matches;
    integrated_tuples = result->stats.intermediate_tuples;
  });
  double post_ms = MedianMillis(5, [&] {
    auto result = twig::Evaluate(indexed, query, post_filter);
    CHECK(result.ok());
    CHECK_EQ(result->stats.matches, ordered_matches);  // same answers
    post_tuples = result->stats.intermediate_tuples;
  });

  table->AddRow({workload.name, std::to_string(unordered_matches),
                 std::to_string(ordered_matches), Fmt(unordered_ms, 2),
                 Fmt(integrated_ms, 2), Fmt(post_ms, 2),
                 std::to_string(integrated_tuples),
                 std::to_string(post_tuples)});
}

}  // namespace
}  // namespace lotusx

int main() {
  std::printf(
      "E4: order-sensitive queries — selectivity, overhead, and integrated\n"
      "order checking vs naive post-filtering (same answers, different "
      "work)\n\n");

  const std::vector<lotusx::Workload> workloads = {
      // Holds by generator schema: name < brand < price in every product.
      {"name<price (always true)", "//product[ordered][name][price]"},
      {"name<brand<price", "//product[ordered][name][brand][price]"},
      // Impossible order: maximally selective.
      {"price<name (never true)", "//product[ordered][price][name]"},
      // Partially selective: review order among siblings varies... rating
      // always precedes comment inside one review, but across reviews the
      // pairing is free, so the constraint prunes cross pairs.
      {"rating<comment (cross-review)",
       "//product[ordered][review/rating][review/comment]"},
      {"category: name<product", "//category[ordered][name][product]"},
  };

  for (int num_products : {500, 2000, 8000}) {
    lotusx::datagen::StoreOptions options;
    options.num_products = num_products;
    lotusx::index::IndexedDocument indexed(
        lotusx::datagen::GenerateStore(options));
    std::printf("--- store, %d nodes ---\n", indexed.document().num_nodes());
    lotusx::bench::Table table({"workload", "unord", "ordered", "unord ms",
                                "integ ms", "postf ms", "integ tuples",
                                "postf tuples"});
    for (const lotusx::Workload& workload : workloads) {
      lotusx::Run(indexed, workload, &table);
    }
    table.Print();
    std::printf("\n");
  }
  std::printf(
      "expected shape: ordered <= unord (order only filters); integ ms <=\n"
      "postf ms with the gap widening on selective constraints, where\n"
      "integrated pruning keeps 'integ tuples' well below 'postf tuples'.\n");
  return 0;
}
