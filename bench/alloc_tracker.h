#ifndef LOTUSX_BENCH_ALLOC_TRACKER_H_
#define LOTUSX_BENCH_ALLOC_TRACKER_H_

#include <cstdint>

namespace lotusx::bench {

/// Process-wide heap counters since start, maintained by the replaced
/// global operator new in alloc_tracker.cc (linked into every bench
/// binary, never into the library or tests). Sample before and after a
/// timed region and divide by repetitions to get the bytes_per_op /
/// allocs_per_op columns of the --json report.
struct AllocCounters {
  uint64_t allocs = 0;
  uint64_t bytes = 0;
};

AllocCounters CurrentAllocCounters();

}  // namespace lotusx::bench

#endif  // LOTUSX_BENCH_ALLOC_TRACKER_H_
